#include "plan/params.h"

#include <cstdio>
#include <sstream>
#include <variant>

#include "util/macros.h"

namespace hique::plan {
namespace {

using sql::Filter;
using sql::ScalarExpr;
using sql::ScalarKind;

/// Assigns ParamTable slots in canonical plan order. The walk must visit
/// exactly the literals the code generator renders, in a fixed order that
/// depends only on plan structure, so that structurally identical plans
/// agree on every slot id.
class Parameterizer {
 public:
  Parameterizer(PhysicalPlan* plan, ParamMode mode)
      : plan_(plan), mode_(mode) {}

  void Run() {
    for (auto& op : plan_->ops) {
      if (auto* stage = std::get_if<StageOp>(&op)) {
        for (Filter& f : stage->filters) AssignFilter(&f);
      } else if (auto* join = std::get_if<JoinOp>(&op)) {
        if (join->fuse_scalar_agg) AssignAggArgs();
      } else if (auto* agg = std::get_if<AggOp>(&op)) {
        // Map aggregation over an unstaged base table inlines the query's
        // filters on that table directly into its scan.
        const StreamInfo& in = plan_->streams[agg->input_stream];
        if (in.is_base_table) {
          for (Filter& f : plan_->query->filters) {
            if (f.column.table == in.base_table_index) AssignFilter(&f);
          }
        }
        AssignAggArgs();
      } else if (auto* output = std::get_if<OutputOp>(&op)) {
        // Output items are built one-to-one from the query's output columns;
        // expression items alias the bound scalars owned by the query.
        for (size_t i = 0; i < output->items.size(); ++i) {
          if (output->items[i].expr == nullptr) continue;
          ScalarExpr* scalar = plan_->query->outputs[i].scalar.get();
          HQ_CHECK_MSG(scalar == output->items[i].expr,
                       "output item expr must alias the bound output scalar");
          AssignExpr(scalar);
        }
      }
    }
    // Placeholder ordinal -> slot map. A -1 survivor means a placeholder sat
    // in a position the canonical walk never visits; the engine rejects the
    // plan rather than execute with an unbound value.
    ParamTable& t = plan_->params;
    t.placeholder_entries.assign(plan_->query->num_placeholders, -1);
    for (size_t i = 0; i < t.entries.size(); ++i) {
      int ph = t.entries[i].placeholder;
      if (ph >= 0 && ph < static_cast<int>(t.placeholder_entries.size())) {
        t.placeholder_entries[ph] = static_cast<int>(i);
      }
    }
  }

 private:
  void AssignAggArgs() {
    for (auto& spec : plan_->query->aggs) {
      if (spec.arg) AssignExpr(spec.arg.get());
    }
  }

  void AssignFilter(Filter* f) {
    if (f->rhs_is_column || f->param >= 0) return;
    if (mode_ == ParamMode::kPlaceholdersOnly && f->placeholder < 0) return;
    f->param = AddEntry(f->literal, f->placeholder);
  }

  /// Hoists numeric literals only: CHAR literals inside scalar expressions
  /// have no runtime representation in arithmetic and stay inlined (CHAR
  /// *filter* literals are hoisted through AssignFilter into the byte bank).
  void AssignExpr(ScalarExpr* e) {
    if (e->kind == ScalarKind::kLiteral && e->param < 0 &&
        e->type.id != TypeId::kChar &&
        (mode_ == ParamMode::kAllLiterals || e->placeholder >= 0)) {
      e->param = AddEntry(e->literal, e->placeholder);
    }
    if (e->left) AssignExpr(e->left.get());
    if (e->right) AssignExpr(e->right.get());
  }

  int AddEntry(const Value& v, int placeholder) {
    ParamTable& t = plan_->params;
    ParamEntry entry;
    entry.type = v.type();
    entry.value = v;
    entry.placeholder = placeholder;
    switch (v.type_id()) {
      case TypeId::kInt32:
      case TypeId::kInt64:
      case TypeId::kDate:
        entry.bank_index = t.num_ints++;
        break;
      case TypeId::kDouble:
        entry.bank_index = t.num_doubles++;
        break;
      case TypeId::kChar:
        entry.bank_index = t.num_char_bytes;
        t.num_char_bytes += v.type().length;
        break;
    }
    t.entries.push_back(std::move(entry));
    return static_cast<int>(t.entries.size() - 1);
  }

  PhysicalPlan* plan_;
  ParamMode mode_;
};

// ---- signature serialization ----------------------------------------------

void SigType(std::ostream& out, Type t) {
  out << static_cast<int>(t.id);
  if (t.id == TypeId::kChar) out << "." << t.length;
}

void SigValue(std::ostream& out, const Value& v) {
  SigType(out, v.type());
  out << "=";
  switch (v.type_id()) {
    case TypeId::kDouble: {
      // Full precision: codegen inlines %.17g, so the signature must
      // distinguish every double the generated source distinguishes
      // (Value::ToString rounds for display and would collide).
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      out << buf;
      break;
    }
    case TypeId::kChar:
      out << v.AsString();  // padded to the column width: injective
      break;
    default:
      out << v.AsInt64();
      break;
  }
}

/// A literal position: `?N` once parameterized (N is canonical), otherwise
/// the inline value so unparameterized plans still key correctly.
void SigLiteral(std::ostream& out, int param, const Value& v) {
  if (param >= 0) {
    out << "?" << param << ":";
    SigType(out, v.type());
  } else {
    SigValue(out, v);
  }
}

void SigScalar(std::ostream& out, const ScalarExpr& e) {
  switch (e.kind) {
    case ScalarKind::kColumn:
      out << "c(" << e.column.table << "." << e.column.column << ":";
      SigType(out, e.type);
      out << ")";
      return;
    case ScalarKind::kLiteral:
      out << "l(";
      SigLiteral(out, e.param, e.literal);
      out << ")";
      return;
    case ScalarKind::kArith:
      out << "(";
      SigScalar(out, *e.left);
      out << e.op;
      SigScalar(out, *e.right);
      out << ":";
      SigType(out, e.type);
      out << ")";
      return;
  }
}

void SigFilter(std::ostream& out, const Filter& f) {
  out << "f(" << f.column.table << "." << f.column.column
      << sql::CmpOpToC(f.op);
  if (f.rhs_is_column) {
    out << f.rhs_column.table << "." << f.rhs_column.column;
  } else {
    SigLiteral(out, f.param, f.literal);
  }
  out << ")";
}

void SigLayout(std::ostream& out, const RecordLayout& layout) {
  out << "[";
  for (size_t i = 0; i < layout.fields.size(); ++i) {
    if (i) out << ",";
    const FieldRef& f = layout.fields[i];
    out << f.source.table << "." << f.source.column << ":";
    SigType(out, f.type);
    out << "@" << layout.offsets[i];
  }
  out << "|" << layout.record_size << "]";
}

void SigAggSpecs(std::ostream& out, const sql::BoundQuery& q) {
  out << "aggs{";
  for (size_t i = 0; i < q.aggs.size(); ++i) {
    if (i) out << ";";
    const sql::AggSpec& spec = q.aggs[i];
    out << sql::AggFuncName(spec.func) << ":";
    SigType(out, spec.out_type);
    if (spec.arg) {
      out << "<-";
      SigScalar(out, *spec.arg);
    }
  }
  out << "}";
}

template <typename T>
void SigIntList(std::ostream& out, const std::vector<T>& v) {
  out << "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out << ",";
    out << static_cast<int64_t>(v[i]);
  }
  out << "]";
}

/// Base-table compression codec: every constant codegen bakes into the
/// fused decode kernels must key the cached library. Omitted entirely for
/// uncompressed inputs, keeping pre-compression signatures (and cached
/// libraries) byte-stable.
void SigCodec(std::ostream& out, const TableCodec& tc) {
  if (!tc.enabled) return;
  out << ",enc=tpc" << tc.tuples_per_cpage << "[";
  for (size_t c = 0; c < tc.cols.size(); ++c) {
    if (c) out << ";";
    const ColumnCodec& cc = tc.cols[c];
    switch (cc.enc) {
      case ColEncoding::kRaw:
        out << "r";
        break;
      case ColEncoding::kFOR:
        out << "f:" << cc.bits << ":" << cc.base;
        break;
      case ColEncoding::kDelta:
        out << "d:" << cc.bits;
        break;
      case ColEncoding::kDict:
        out << "c:" << cc.bits << ":" << cc.dict_entries;
        break;
    }
  }
  out << "]";
}

}  // namespace

void ParameterizePlan(PhysicalPlan* plan, ParamMode mode) {
  Parameterizer(plan, mode).Run();
}

std::string PlanSignature(const PhysicalPlan& plan) {
  std::ostringstream out;
  out << "hique-sig-v1\n";

  const sql::BoundQuery& q = *plan.query;
  out << "tables:";
  for (const Table* t : q.tables) {
    out << t->name() << "{" << t->schema().ToString() << "}";
  }
  out << "\n";

  out << "streams:";
  for (const StreamInfo& s : plan.streams) {
    // est_rows is intentionally omitted: it only seeds initial buffer
    // capacities in generated code, so sharing a library compiled with a
    // different estimate is safe.
    out << "{b=" << (s.is_base_table ? s.base_table_index : -1);
    SigLayout(out, s.layout);
    out << "}";
  }
  out << "\n";

  for (size_t k = 0; k < plan.ops.size(); ++k) {
    out << "op" << k << ":";
    if (const auto* stage = std::get_if<StageOp>(&plan.ops[k])) {
      out << "stage{in=" << stage->input_stream
          << ",out=" << stage->out_stream
          << ",act=" << static_cast<int>(stage->action) << ",keys=";
      SigIntList(out, stage->key_fields);
      out << ",M=" << stage->num_partitions << ",fmin=" << stage->fine_min
          << ",fclamp=" << stage->fine_clamp;
      SigCodec(out, stage->input_codec);
      SigLayout(out, stage->output);
      for (const auto& f : stage->filters) SigFilter(out, f);
      out << "}";
    } else if (const auto* join = std::get_if<JoinOp>(&plan.ops[k])) {
      out << "join{algo=" << static_cast<int>(join->algo) << ",in=";
      SigIntList(out, join->input_streams);
      out << ",out=" << join->out_stream << ",keys=";
      SigIntList(out, join->key_fields);
      out << ",M=" << join->num_partitions << ",pt=" << join->par_tasks;
      SigLayout(out, join->output);
      if (join->fuse_scalar_agg) {
        out << ",fused";
        SigLayout(out, join->fused_output);
        SigAggSpecs(out, q);
      }
      out << "}";
    } else if (const auto* agg = std::get_if<AggOp>(&plan.ops[k])) {
      out << "agg{algo=" << static_cast<int>(agg->algo)
          << ",in=" << agg->input_stream << ",out=" << agg->out_stream
          << ",keys=";
      SigIntList(out, agg->group_fields);
      out << ",M=" << agg->num_partitions << ",pt=" << agg->par_tasks
          << ",caps=";
      SigIntList(out, agg->directory_capacity);
      out << ",dense=";
      SigIntList(out, agg->directory_dense);
      out << ",dmin=";
      SigIntList(out, agg->directory_min);
      SigCodec(out, agg->input_codec);
      SigLayout(out, agg->output);
      const StreamInfo& in = plan.streams[agg->input_stream];
      if (in.is_base_table) {
        // These query filters are inlined into the map-aggregation scan.
        for (const auto& f : q.filters) {
          if (f.column.table == in.base_table_index) SigFilter(out, f);
        }
      }
      SigAggSpecs(out, q);
      out << "}";
    } else if (const auto* output = std::get_if<OutputOp>(&plan.ops[k])) {
      out << "output{in=" << output->input_stream << ",items=";
      for (size_t i = 0; i < output->items.size(); ++i) {
        if (i) out << ";";
        const auto& item = output->items[i];
        out << item.name << ":";
        SigType(out, item.type);
        if (item.field_index >= 0) {
          out << "#" << item.field_index;
        } else {
          out << "<-";
          SigScalar(out, *item.expr);
        }
      }
      out << ",order=";
      for (const auto& spec : output->order_by) {
        out << spec.output_index << (spec.desc ? "d" : "a") << ",";
      }
      out << "sorted=" << output->already_sorted
          << ",limit=" << output->limit << ",pt=" << output->par_tasks << "}";
    }
    out << "\n";
  }

  out << "result:{" << plan.output_schema.ToString() << "}\n";
  return out.str();
}

}  // namespace hique::plan

#ifndef HIQUE_REF_REFERENCE_H_
#define HIQUE_REF_REFERENCE_H_

#include <string>
#include <vector>

#include "sql/bound.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace hique::ref {

using Row = std::vector<Value>;

/// Naive, obviously-correct evaluator over a bound query: materialized
/// nested-loops joins, hash-free map-based grouping over boxed values.
/// Used exclusively as the ground-truth oracle in differential tests.
Result<std::vector<Row>> Execute(const sql::BoundQuery& query);

/// Parses + binds + executes in one step.
Result<std::vector<Row>> ExecuteSql(const std::string& sql,
                                    const Catalog& catalog);

/// Row-set comparison for differential tests: both sides are sorted
/// canonically and compared with a relative tolerance for doubles.
/// Returns a failed status describing the first mismatch.
Status CompareRowSets(const std::vector<Row>& expected,
                      const std::vector<Row>& actual,
                      bool respect_order = false);

}  // namespace hique::ref

#endif  // HIQUE_REF_REFERENCE_H_

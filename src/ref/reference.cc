#include "ref/reference.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "sql/binder.h"

namespace hique::ref {
namespace {

using sql::AggFunc;
using sql::BoundQuery;
using sql::ColRef;
using sql::CmpOp;
using sql::ScalarExpr;
using sql::ScalarKind;

/// One joined row: per FROM table, the tuple's boxed values.
struct JoinedRow {
  std::vector<const Row*> parts;  // one per table
};

Value GetCol(const JoinedRow& row, ColRef ref) {
  return (*row.parts[ref.table])[ref.column];
}

Value EvalScalar(const ScalarExpr& e, const JoinedRow& row) {
  switch (e.kind) {
    case ScalarKind::kColumn:
      return GetCol(row, e.column);
    case ScalarKind::kLiteral:
      return e.literal;
    case ScalarKind::kArith: {
      Value l = EvalScalar(*e.left, row);
      Value r = EvalScalar(*e.right, row);
      if (e.type.id == TypeId::kDouble) {
        double a = l.AsDouble(), b = r.AsDouble();
        switch (e.op) {
          case '+':
            return Value::Double(a + b);
          case '-':
            return Value::Double(a - b);
          case '*':
            return Value::Double(a * b);
          case '/':
            return Value::Double(b == 0 ? 0 : a / b);
        }
      }
      int64_t a = l.AsInt64(), b = r.AsInt64();
      int64_t v = 0;
      switch (e.op) {
        case '+':
          v = a + b;
          break;
        case '-':
          v = a - b;
          break;
        case '*':
          v = a * b;
          break;
        case '/':
          v = b == 0 ? 0 : a / b;
          break;
      }
      if (e.type.id == TypeId::kInt32) {
        return Value::Int32(static_cast<int32_t>(v));
      }
      return Value::Int64(v);
    }
  }
  return Value();
}

bool CmpHolds(int cmp, CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return false;
}

struct AggState {
  double sum_d = 0;
  int64_t sum_i = 0;
  int64_t count = 0;
  Value min, max;
  bool has_minmax = false;
};

class Evaluator {
 public:
  explicit Evaluator(const BoundQuery& q) : q_(q) {}

  Result<std::vector<Row>> Run() {
    HQ_RETURN_IF_ERROR(LoadTables());
    std::vector<JoinedRow> joined;
    HQ_RETURN_IF_ERROR(JoinAll(&joined));
    std::vector<Row> rows;
    if (q_.HasAggregation()) {
      HQ_RETURN_IF_ERROR(Aggregate(joined, &rows));
    } else {
      for (const JoinedRow& jr : joined) {
        Row out;
        for (const auto& item : q_.outputs) {
          out.push_back(EvalScalar(*item.scalar, jr));
        }
        rows.push_back(std::move(out));
      }
    }
    SortAndLimit(&rows);
    return rows;
  }

 private:
  Status LoadTables() {
    tables_.resize(q_.tables.size());
    for (size_t t = 0; t < q_.tables.size(); ++t) {
      Table* table = q_.tables[t];
      const Schema& schema = table->schema();
      auto& rows = tables_[t];
      rows.reserve(table->NumTuples());
      HQ_RETURN_IF_ERROR(table->ForEachTuple([&](const uint8_t* tuple) {
        Row row;
        row.reserve(schema.NumColumns());
        for (size_t c = 0; c < schema.NumColumns(); ++c) {
          row.push_back(schema.GetValue(tuple, c));
        }
        rows.push_back(std::move(row));
      }));
      // Apply single-table filters.
      auto passes = [&](const Row& row) {
        for (const auto& f : q_.filters) {
          if (f.column.table != static_cast<int>(t)) continue;
          const Value& lhs = row[f.column.column];
          int cmp;
          if (f.rhs_is_column) {
            cmp = lhs.Compare(row[f.rhs_column.column]);
          } else {
            cmp = lhs.Compare(f.literal);
          }
          if (!CmpHolds(cmp, f.op)) return false;
        }
        return true;
      };
      std::vector<Row> kept;
      for (auto& row : rows) {
        if (passes(row)) kept.push_back(std::move(row));
      }
      rows = std::move(kept);
    }
    return Status::OK();
  }

  Status JoinAll(std::vector<JoinedRow>* out) {
    // Progressive nested-loops join in FROM order, applying every join
    // predicate as soon as both sides are available.
    std::vector<JoinedRow> current;
    for (const Row& r : tables_[0]) {
      JoinedRow jr;
      jr.parts.assign(q_.tables.size(), nullptr);
      jr.parts[0] = &r;
      current.push_back(jr);
    }
    for (size_t t = 1; t < q_.tables.size(); ++t) {
      std::vector<JoinedRow> next;
      for (const JoinedRow& jr : current) {
        for (const Row& r : tables_[t]) {
          JoinedRow cand = jr;
          cand.parts[t] = &r;
          bool ok = true;
          for (const auto& j : q_.joins) {
            int lt = j.left.table, rt = j.right.table;
            if (cand.parts[lt] == nullptr || cand.parts[rt] == nullptr) {
              continue;
            }
            // Only check predicates that become complete with table t.
            if (lt != static_cast<int>(t) && rt != static_cast<int>(t)) {
              continue;
            }
            if (GetCol(cand, j.left).Compare(GetCol(cand, j.right)) != 0) {
              ok = false;
              break;
            }
          }
          if (ok) next.push_back(std::move(cand));
        }
      }
      current = std::move(next);
    }
    if (q_.tables.size() > 1 && q_.joins.empty()) {
      return Status::NotImplemented("cross product in reference executor");
    }
    *out = std::move(current);
    return Status::OK();
  }

  Status Aggregate(const std::vector<JoinedRow>& joined,
                   std::vector<Row>* out) {
    // Group map keyed by the canonical string rendering of group values.
    std::map<std::string, std::pair<Row, std::vector<AggState>>> groups;
    for (const JoinedRow& jr : joined) {
      std::string key;
      Row key_vals;
      for (ColRef g : q_.group_by) {
        Value v = GetCol(jr, g);
        key += v.ToString();
        key += '\x1f';
        key_vals.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(
          key, std::make_pair(std::move(key_vals),
                              std::vector<AggState>(q_.aggs.size())));
      auto& states = it->second.second;
      for (size_t a = 0; a < q_.aggs.size(); ++a) {
        const sql::AggSpec& spec = q_.aggs[a];
        AggState& st = states[a];
        ++st.count;
        if (spec.arg) {
          Value v = EvalScalar(*spec.arg, jr);
          st.sum_d += v.AsDouble();
          if (v.type_id() != TypeId::kDouble) st.sum_i += v.AsInt64();
          if (!st.has_minmax) {
            st.min = v;
            st.max = v;
            st.has_minmax = true;
          } else {
            if (v.Compare(st.min) < 0) st.min = v;
            if (v.Compare(st.max) > 0) st.max = v;
          }
        }
      }
    }
    // Scalar aggregation over an empty input still emits one zero row
    // (engine semantics: no NULLs).
    if (groups.empty() && q_.group_by.empty()) {
      groups.try_emplace("", std::make_pair(Row{}, std::vector<AggState>(
                                                       q_.aggs.size())));
      for (auto& [k, v] : groups) {
        for (auto& st : v.second) st.count = 0;
      }
    }
    for (auto& [key, entry] : groups) {
      Row out_row;
      for (const auto& item : q_.outputs) {
        switch (item.kind) {
          case sql::OutputCol::Kind::kGroupKey:
            out_row.push_back(entry.first[item.index]);
            break;
          case sql::OutputCol::Kind::kAggregate: {
            const sql::AggSpec& spec = q_.aggs[item.index];
            const AggState& st = entry.second[item.index];
            switch (spec.func) {
              case AggFunc::kCount:
                out_row.push_back(Value::Int64(st.count));
                break;
              case AggFunc::kSum:
                if (spec.out_type.id == TypeId::kDouble) {
                  out_row.push_back(Value::Double(st.sum_d));
                } else {
                  out_row.push_back(Value::Int64(st.sum_i));
                }
                break;
              case AggFunc::kAvg:
                out_row.push_back(Value::Double(
                    st.count == 0 ? 0 : st.sum_d / static_cast<double>(
                                                       st.count)));
                break;
              case AggFunc::kMin:
                out_row.push_back(st.has_minmax ? st.min
                                                : ZeroOf(spec.out_type));
                break;
              case AggFunc::kMax:
                out_row.push_back(st.has_minmax ? st.max
                                                : ZeroOf(spec.out_type));
                break;
            }
            break;
          }
          case sql::OutputCol::Kind::kScalar:
            return Status::Internal("scalar output in aggregate query");
        }
      }
      out->push_back(std::move(out_row));
    }
    return Status::OK();
  }

  static Value ZeroOf(Type t) {
    switch (t.id) {
      case TypeId::kInt32:
        return Value::Int32(0);
      case TypeId::kDate:
        return Value::Date(0);
      case TypeId::kInt64:
        return Value::Int64(0);
      case TypeId::kDouble:
        return Value::Double(0);
      case TypeId::kChar:
        return Value::Char("", t.length);
    }
    return Value();
  }

  void SortAndLimit(std::vector<Row>* rows) {
    if (!q_.order_by.empty()) {
      std::stable_sort(rows->begin(), rows->end(),
                       [&](const Row& a, const Row& b) {
                         for (const auto& spec : q_.order_by) {
                           int c = a[spec.output_index].Compare(
                               b[spec.output_index]);
                           if (c != 0) return spec.desc ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }
    if (q_.limit >= 0 &&
        rows->size() > static_cast<size_t>(q_.limit)) {
      rows->resize(static_cast<size_t>(q_.limit));
    }
  }

  const BoundQuery& q_;
  std::vector<std::vector<Row>> tables_;
};

std::string RowToString(const Row& row) {
  std::string s;
  for (const auto& v : row) {
    s += v.ToString();
    s += '\x1f';
  }
  return s;
}

}  // namespace

Result<std::vector<Row>> Execute(const sql::BoundQuery& query) {
  Evaluator ev(query);
  return ev.Run();
}

Result<std::vector<Row>> ExecuteSql(const std::string& sql,
                                    const Catalog& catalog) {
  HQ_ASSIGN_OR_RETURN(auto bound, sql::ParseAndBind(sql, catalog));
  if (bound->num_placeholders > 0) {
    return Status::BindError(
        "the reference executor does not support ? placeholders");
  }
  return Execute(*bound);
}

Status CompareRowSets(const std::vector<Row>& expected,
                      const std::vector<Row>& actual, bool respect_order) {
  if (expected.size() != actual.size()) {
    return Status::Internal("row count mismatch: expected " +
                            std::to_string(expected.size()) + ", got " +
                            std::to_string(actual.size()));
  }
  auto value_eq = [](const Value& a, const Value& b) {
    if (a.type_id() == TypeId::kDouble || b.type_id() == TypeId::kDouble) {
      double x = a.AsDouble(), y = b.AsDouble();
      double tol = 1e-6 * std::max({1.0, std::fabs(x), std::fabs(y)});
      return std::fabs(x - y) <= tol;
    }
    if (a.type_id() != b.type_id()) return false;
    return a.Compare(b) == 0;
  };
  auto rows_eq = [&](const Row& a, const Row& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!value_eq(a[i], b[i])) return false;
    }
    return true;
  };

  std::vector<const Row*> e, a;
  for (const auto& r : expected) e.push_back(&r);
  for (const auto& r : actual) a.push_back(&r);
  if (!respect_order) {
    auto cmp = [](const Row* x, const Row* y) {
      return RowToString(*x) < RowToString(*y);
    };
    std::sort(e.begin(), e.end(), cmp);
    std::sort(a.begin(), a.end(), cmp);
  }
  for (size_t i = 0; i < e.size(); ++i) {
    if (!rows_eq(*e[i], *a[i])) {
      return Status::Internal("row " + std::to_string(i) +
                              " mismatch:\n  expected: " + RowToString(*e[i]) +
                              "\n  actual:   " + RowToString(*a[i]));
    }
  }
  return Status::OK();
}

}  // namespace hique::ref

#ifndef HIQUE_SQL_BINDER_H_
#define HIQUE_SQL_BINDER_H_

#include <memory>

#include "sql/ast.h"
#include "sql/bound.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace hique::sql {

/// Validates a parsed SELECT against the catalogue and produces the bound
/// query: resolved column coordinates, typed expressions, the WHERE clause
/// decomposed into per-table filters and equi-join predicates.
Result<std::unique_ptr<BoundQuery>> Bind(const SelectStmt& stmt,
                                         const Catalog& catalog);

/// Convenience: parse + bind.
Result<std::unique_ptr<BoundQuery>> ParseAndBind(const std::string& sql,
                                                 const Catalog& catalog);

}  // namespace hique::sql

#endif  // HIQUE_SQL_BINDER_H_

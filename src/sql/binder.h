#ifndef HIQUE_SQL_BINDER_H_
#define HIQUE_SQL_BINDER_H_

#include <memory>

#include "sql/ast.h"
#include "sql/bound.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace hique::sql {

/// Validates a parsed SELECT against the catalogue and produces the bound
/// query: resolved column coordinates, typed expressions, the WHERE clause
/// decomposed into per-table filters and equi-join predicates.
Result<std::unique_ptr<BoundQuery>> Bind(const SelectStmt& stmt,
                                         const Catalog& catalog);

/// Convenience: parse + bind.
Result<std::unique_ptr<BoundQuery>> ParseAndBind(const std::string& sql,
                                                 const Catalog& catalog);

/// Coerces a literal/user value to `target` using the binder's predicate
/// coercion rules (int widths, numeric -> double, 'YYYY-MM-DD' -> date, CHAR
/// re-padded to the column width). Also used by the engine to type-check
/// placeholder values handed to HiqueEngine::Execute.
Result<Value> CoerceValueToType(const Value& value, Type target);

/// A zero value of `target` (0 / 0.0 / epoch date / all-spaces CHAR): what
/// the binder stores for a `?` placeholder until execution binds a real one.
Value ZeroValueOfType(Type target);

}  // namespace hique::sql

#endif  // HIQUE_SQL_BINDER_H_

#ifndef HIQUE_SQL_BOUND_H_
#define HIQUE_SQL_BOUND_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/table.h"

namespace hique::sql {

/// A column of one of the FROM tables: (table index in FROM order, column
/// index in that table's schema). All post-binding structures use these
/// coordinates; execution engines map them to physical offsets as tuples
/// flow through staging and joins.
struct ColRef {
  int table = -1;
  int column = -1;
  bool operator==(const ColRef& o) const {
    return table == o.table && column == o.column;
  }
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Renders the C operator ("==", "!=", ...) for code generation.
const char* CmpOpToC(CmpOp op);

/// A typed scalar expression over FROM columns. Appears in select lists and
/// aggregate arguments. (Predicates are restricted to the simpler Filter /
/// JoinPred forms below, matching the paper's conjunctive grammar.)
struct ScalarExpr;
using ScalarExprPtr = std::unique_ptr<ScalarExpr>;

enum class ScalarKind { kColumn, kLiteral, kArith };

struct ScalarExpr {
  ScalarKind kind = ScalarKind::kColumn;
  Type type;

  ColRef column;          // kColumn
  Value literal;          // kLiteral
  char op = '+';          // kArith: + - * /
  ScalarExprPtr left;
  ScalarExprPtr right;

  /// Hoisted-constant slot (index into the plan's ParamTable) assigned by
  /// plan::ParameterizePlan, or -1 when the literal stays inlined. Generated
  /// code reads slotted literals from the runtime parameter block so one
  /// compiled query serves every literal binding.
  int param = -1;

  /// `?` placeholder ordinal when this literal stands for a user-supplied
  /// value (prepared statements); -1 for ordinary literals. The binder infers
  /// the type from the arithmetic context and stores a zero value of that
  /// type in `literal`; ParameterizePlan must hoist placeholder literals even
  /// when constant hoisting is off, since they have no value to inline.
  int placeholder = -1;

  static ScalarExprPtr Column(ColRef ref, Type t) {
    auto e = std::make_unique<ScalarExpr>();
    e->kind = ScalarKind::kColumn;
    e->column = ref;
    e->type = t;
    return e;
  }
  static ScalarExprPtr Literal(Value v) {
    auto e = std::make_unique<ScalarExpr>();
    e->kind = ScalarKind::kLiteral;
    e->type = v.type();
    e->literal = std::move(v);
    return e;
  }
  static ScalarExprPtr Arith(char op, ScalarExprPtr l, ScalarExprPtr r,
                             Type t) {
    auto e = std::make_unique<ScalarExpr>();
    e->kind = ScalarKind::kArith;
    e->op = op;
    e->left = std::move(l);
    e->right = std::move(r);
    e->type = t;
    return e;
  }

  ScalarExprPtr Clone() const {
    auto e = std::make_unique<ScalarExpr>();
    e->kind = kind;
    e->type = type;
    e->column = column;
    e->literal = literal;
    e->op = op;
    e->param = param;
    e->placeholder = placeholder;
    if (left) e->left = left->Clone();
    if (right) e->right = right->Clone();
    return e;
  }

  /// All column references in this expression (appended to `out`).
  void CollectColumns(std::vector<ColRef>* out) const {
    if (kind == ScalarKind::kColumn) out->push_back(column);
    if (left) left->CollectColumns(out);
    if (right) right->CollectColumns(out);
  }
};

/// Selection predicate on a single table: `col op literal` or
/// `col op other_col_of_same_table`.
struct Filter {
  ColRef column;
  CmpOp op = CmpOp::kEq;
  bool rhs_is_column = false;
  ColRef rhs_column;  // same table as `column`
  Value literal;

  /// Hoisted-constant slot for `literal` (see ScalarExpr::param); -1 inlines.
  int param = -1;

  /// `?` placeholder ordinal (see ScalarExpr::placeholder); -1 for literals.
  /// The binder types placeholders from the filtered column and stores a zero
  /// value of that type in `literal`.
  int placeholder = -1;
};

/// Equi-join predicate between two different FROM tables.
struct JoinPred {
  ColRef left;
  ColRef right;
};

enum class AggFunc { kSum, kCount, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ScalarExprPtr arg;  // null for COUNT(*)
  Type out_type;
};

/// One output column of the query.
struct OutputCol {
  enum class Kind { kGroupKey, kAggregate, kScalar } kind = Kind::kScalar;
  int index = -1;        // into group_by / aggs for the first two kinds
  ScalarExprPtr scalar;  // kScalar (non-aggregated queries only)
  std::string name;
  Type type;
};

struct OrderSpec {
  int output_index = -1;
  bool desc = false;
};

/// The fully bound query: what the optimizer consumes.
struct BoundQuery {
  std::vector<Table*> tables;          // FROM order
  std::vector<std::string> aliases;
  std::vector<Filter> filters;
  std::vector<JoinPred> joins;
  std::vector<ColRef> group_by;
  std::vector<AggSpec> aggs;
  std::vector<OutputCol> outputs;
  std::vector<OrderSpec> order_by;
  int64_t limit = -1;

  /// Number of `?` placeholders bound into filters / scalar expressions.
  /// Queries with placeholders can only run through Prepare/Execute; the
  /// interpreting engines (reference, Volcano, column) reject them.
  int num_placeholders = 0;

  bool HasAggregation() const { return !aggs.empty() || !group_by.empty(); }

  /// Schema of the result set.
  Schema OutputSchema() const {
    Schema s;
    for (const auto& out : outputs) s.AddColumn(out.name, out.type);
    return s;
  }
};

}  // namespace hique::sql

#endif  // HIQUE_SQL_BOUND_H_

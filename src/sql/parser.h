#ifndef HIQUE_SQL_PARSER_H_
#define HIQUE_SQL_PARSER_H_

#include <memory>
#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace hique::sql {

/// Parses one SELECT statement. See ast.h for the supported grammar.
Result<std::unique_ptr<SelectStmt>> Parse(const std::string& sql);

/// Cheap routing check: does `sql` start with INSERT / UPDATE / DELETE?
/// (Lexical only — the statement may still fail to parse.)
bool IsDmlStatement(const std::string& sql);

/// Parses one DML statement (INSERT / UPDATE / DELETE; see ast.h).
/// Placeholders (`?`) are rejected — DML is not a prepared-statement path.
Result<std::unique_ptr<DmlStmt>> ParseDml(const std::string& sql);

/// Cheap routing check for `EXPLAIN [ANALYZE] <stmt>` (lexical, like
/// IsDmlStatement). When `sql` starts with the EXPLAIN keyword, returns
/// true and fills `*analyze` and `*inner` (the statement after the
/// prefix, which may itself fail to parse later). Otherwise returns false
/// and leaves the outputs untouched.
bool ParseExplainPrefix(const std::string& sql, bool* analyze,
                        std::string* inner);

}  // namespace hique::sql

#endif  // HIQUE_SQL_PARSER_H_

#ifndef HIQUE_SQL_AST_H_
#define HIQUE_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace hique::sql {

/// Unbound expression AST produced by the parser. The grammar matches the
/// paper's prototype (§IV): conjunctive queries with equi-joins, arbitrary
/// groupings and sort orders; no nested queries, no statistical aggregates.
enum class ExprKind { kColumnRef, kIntLit, kFloatLit, kStringLit, kDateLit,
                      kBinary, kAggregate, kStar, kPlaceholder };

enum class BinaryOp { kAdd, kSub, kMul, kDiv, kEq, kNe, kLt, kLe, kGt, kGe,
                      kAnd };

enum class ParseAggFunc { kSum, kCount, kAvg, kMin, kMax };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  // kColumnRef: optional qualifier ("t.col" or "col").
  std::string qualifier;
  std::string column;

  // literals
  int64_t int_value = 0;
  double float_value = 0;
  std::string string_value;
  int32_t date_value = 0;

  // kBinary
  BinaryOp op = BinaryOp::kAdd;
  ExprPtr left;
  ExprPtr right;

  // kAggregate: agg(arg) or COUNT(*)
  ParseAggFunc agg = ParseAggFunc::kCount;
  ExprPtr arg;  // null for COUNT(*)

  // kPlaceholder: 0-based ordinal of this `?` in lexical query order. The
  // binder infers its type from the comparison/arithmetic context and the
  // engine binds a value per execution (prepared statements).
  int placeholder = -1;

  static ExprPtr Column(std::string qualifier, std::string column) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kColumnRef;
    e->qualifier = std::move(qualifier);
    e->column = std::move(column);
    return e;
  }
  static ExprPtr Int(int64_t v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kIntLit;
    e->int_value = v;
    return e;
  }
  static ExprPtr Float(double v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kFloatLit;
    e->float_value = v;
    return e;
  }
  static ExprPtr String(std::string v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kStringLit;
    e->string_value = std::move(v);
    return e;
  }
  static ExprPtr DateLit(int32_t days) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kDateLit;
    e->date_value = days;
    return e;
  }
  static ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->op = op;
    e->left = std::move(l);
    e->right = std::move(r);
    return e;
  }
  static ExprPtr Aggregate(ParseAggFunc f, ExprPtr arg) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kAggregate;
    e->agg = f;
    e->arg = std::move(arg);
    return e;
  }
  static ExprPtr Placeholder(int ordinal) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kPlaceholder;
    e->placeholder = ordinal;
    return e;
  }
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none
};

struct TableRefAst {
  std::string table;
  std::string alias;  // defaults to table name
};

struct OrderItem {
  ExprPtr expr;  // column ref or output alias
  bool desc = false;
};

/// SELECT <items> FROM <tables> [WHERE <conj>] [GROUP BY <cols>]
/// [ORDER BY <items>] [LIMIT n]
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRefAst> from;
  ExprPtr where;  // conjunction tree (AND of comparisons) or null
  std::vector<ExprPtr> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
  int num_placeholders = 0;  // `?` count, in lexical order
};

/// DML statements (executed by the non-codegen executor in src/txn — single
/// table, no joins, so compiling them would never amortize):
///   INSERT INTO <table> VALUES (<literal>, ...)[, (<literal>, ...)]*
///   UPDATE <table> SET col = <expr>[, col = <expr>]* [WHERE <conj>]
///   DELETE FROM <table> [WHERE <conj>]
/// UPDATE value expressions may reference the row's own columns
/// (SET v = v + 1); INSERT values are literals (unary minus allowed).
enum class DmlKind { kInsert, kUpdate, kDelete };

struct SetClause {
  std::string column;
  ExprPtr value;
};

struct DmlStmt {
  DmlKind kind = DmlKind::kInsert;
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;  // INSERT: one vector per row
  std::vector<SetClause> sets;             // UPDATE
  ExprPtr where;                           // UPDATE / DELETE, may be null
};

}  // namespace hique::sql

#endif  // HIQUE_SQL_AST_H_

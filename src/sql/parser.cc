#include "sql/parser.h"

#include <cctype>

#include "sql/lexer.h"
#include "storage/types.h"

namespace hique::sql {
namespace {

/// Recursive-descent parser over the token stream. Expression precedence:
/// AND < comparison < additive < multiplicative < primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    HQ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();

    // Select list.
    while (true) {
      SelectItem item;
      HQ_ASSIGN_OR_RETURN(item.expr, ParseAdditive());
      if (MatchKeyword("AS")) {
        HQ_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      } else if (Peek().type == TokenType::kIdent) {
        // Implicit alias: `expr name`
        item.alias = Peek().text;
        Advance();
      }
      stmt->items.push_back(std::move(item));
      if (!MatchSymbol(",")) break;
    }

    HQ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      TableRefAst ref;
      HQ_ASSIGN_OR_RETURN(ref.table, ExpectIdent());
      if (MatchKeyword("AS")) {
        HQ_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
      } else if (Peek().type == TokenType::kIdent) {
        ref.alias = Peek().text;
        Advance();
      } else {
        ref.alias = ref.table;
      }
      stmt->from.push_back(std::move(ref));
      if (!MatchSymbol(",")) break;
    }

    if (MatchKeyword("WHERE")) {
      HQ_ASSIGN_OR_RETURN(stmt->where, ParseConjunction());
    }
    if (MatchKeyword("GROUP")) {
      HQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        HQ_ASSIGN_OR_RETURN(ExprPtr col, ParsePrimary());
        if (col->kind != ExprKind::kColumnRef) {
          return Status::ParseError("GROUP BY supports column references");
        }
        stmt->group_by.push_back(std::move(col));
        if (!MatchSymbol(",")) break;
      }
    }
    if (MatchKeyword("ORDER")) {
      HQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        HQ_ASSIGN_OR_RETURN(item.expr, ParseAdditive());
        if (MatchKeyword("DESC")) {
          item.desc = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!MatchSymbol(",")) break;
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Status::ParseError("LIMIT expects an integer");
      }
      stmt->limit = Peek().int_value;
      Advance();
    }
    MatchSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input: '" + Peek().text +
                                "'");
    }
    stmt->num_placeholders = num_placeholders_;
    return stmt;
  }

  Result<std::unique_ptr<DmlStmt>> ParseDmlStatement() {
    auto stmt = std::make_unique<DmlStmt>();
    if (MatchKeyword("INSERT")) {
      stmt->kind = DmlKind::kInsert;
      HQ_RETURN_IF_ERROR(ExpectKeyword("INTO"));
      HQ_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
      HQ_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
      do {
        if (!MatchSymbol("(")) {
          return Status::ParseError("expected '(' after VALUES");
        }
        std::vector<ExprPtr> row;
        do {
          HQ_ASSIGN_OR_RETURN(ExprPtr v, ParseAdditive());
          row.push_back(std::move(v));
        } while (MatchSymbol(","));
        if (!MatchSymbol(")")) {
          return Status::ParseError("expected ')' closing a VALUES row");
        }
        stmt->rows.push_back(std::move(row));
      } while (MatchSymbol(","));
    } else if (MatchKeyword("UPDATE")) {
      stmt->kind = DmlKind::kUpdate;
      HQ_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
      HQ_RETURN_IF_ERROR(ExpectKeyword("SET"));
      do {
        SetClause set;
        HQ_ASSIGN_OR_RETURN(set.column, ExpectIdent());
        if (!MatchSymbol("=")) {
          return Status::ParseError("expected '=' in SET clause");
        }
        HQ_ASSIGN_OR_RETURN(set.value, ParseAdditive());
        stmt->sets.push_back(std::move(set));
      } while (MatchSymbol(","));
      if (MatchKeyword("WHERE")) {
        HQ_ASSIGN_OR_RETURN(stmt->where, ParseConjunction());
      }
    } else if (MatchKeyword("DELETE")) {
      stmt->kind = DmlKind::kDelete;
      HQ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
      HQ_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
      if (MatchKeyword("WHERE")) {
        HQ_ASSIGN_OR_RETURN(stmt->where, ParseConjunction());
      }
    } else {
      return Status::ParseError("expected INSERT, UPDATE or DELETE near '" +
                                Peek().text + "'");
    }
    MatchSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input: '" + Peek().text +
                                "'");
    }
    if (num_placeholders_ != 0) {
      return Status::ParseError(
          "placeholders are not supported in DML statements");
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool MatchKeyword(const char* kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchSymbol(const char* sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + " near '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError("expected identifier near '" + Peek().text +
                                "'");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  // conjunction := comparison (AND comparison)*
  Result<ExprPtr> ParseConjunction() {
    HQ_ASSIGN_OR_RETURN(ExprPtr left, ParseComparison());
    while (MatchKeyword("AND")) {
      HQ_ASSIGN_OR_RETURN(ExprPtr right, ParseComparison());
      left = Expr::Binary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  // comparison := additive (op additive)?
  Result<ExprPtr> ParseComparison() {
    HQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    BinaryOp op;
    if (MatchSymbol("=")) {
      op = BinaryOp::kEq;
    } else if (MatchSymbol("<>")) {
      op = BinaryOp::kNe;
    } else if (MatchSymbol("<=")) {
      op = BinaryOp::kLe;
    } else if (MatchSymbol(">=")) {
      op = BinaryOp::kGe;
    } else if (MatchSymbol("<")) {
      op = BinaryOp::kLt;
    } else if (MatchSymbol(">")) {
      op = BinaryOp::kGt;
    } else {
      return Status::ParseError("expected comparison operator near '" +
                                Peek().text + "'");
    }
    HQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return Expr::Binary(op, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseAdditive() {
    HQ_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      if (MatchSymbol("+")) {
        HQ_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Expr::Binary(BinaryOp::kAdd, std::move(left), std::move(right));
      } else if (MatchSymbol("-")) {
        HQ_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Expr::Binary(BinaryOp::kSub, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    HQ_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (true) {
      if (MatchSymbol("*")) {
        HQ_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = Expr::Binary(BinaryOp::kMul, std::move(left), std::move(right));
      } else if (MatchSymbol("/")) {
        HQ_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = Expr::Binary(BinaryOp::kDiv, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kIntLiteral: {
        int64_t v = tok.int_value;
        Advance();
        return Expr::Int(v);
      }
      case TokenType::kFloatLiteral: {
        double v = tok.float_value;
        Advance();
        return Expr::Float(v);
      }
      case TokenType::kStringLiteral: {
        std::string v = tok.text;
        Advance();
        return Expr::String(std::move(v));
      }
      case TokenType::kKeyword: {
        if (tok.text == "DATE") {
          Advance();
          if (Peek().type != TokenType::kStringLiteral) {
            return Status::ParseError("DATE expects a 'YYYY-MM-DD' literal");
          }
          HQ_ASSIGN_OR_RETURN(int32_t days, ParseDate(Peek().text));
          Advance();
          return Expr::DateLit(days);
        }
        ParseAggFunc func;
        if (tok.text == "SUM") {
          func = ParseAggFunc::kSum;
        } else if (tok.text == "COUNT") {
          func = ParseAggFunc::kCount;
        } else if (tok.text == "AVG") {
          func = ParseAggFunc::kAvg;
        } else if (tok.text == "MIN") {
          func = ParseAggFunc::kMin;
        } else if (tok.text == "MAX") {
          func = ParseAggFunc::kMax;
        } else {
          return Status::ParseError("unexpected keyword '" + tok.text + "'");
        }
        Advance();
        if (!MatchSymbol("(")) {
          return Status::ParseError("expected '(' after aggregate function");
        }
        if (func == ParseAggFunc::kCount && MatchSymbol("*")) {
          if (!MatchSymbol(")")) {
            return Status::ParseError("expected ')' after COUNT(*)");
          }
          return Expr::Aggregate(ParseAggFunc::kCount, nullptr);
        }
        HQ_ASSIGN_OR_RETURN(ExprPtr arg, ParseAdditive());
        if (!MatchSymbol(")")) {
          return Status::ParseError("expected ')' after aggregate argument");
        }
        return Expr::Aggregate(func, std::move(arg));
      }
      case TokenType::kIdent: {
        std::string first = tok.text;
        Advance();
        if (MatchSymbol(".")) {
          HQ_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          return Expr::Column(first, std::move(col));
        }
        return Expr::Column("", std::move(first));
      }
      case TokenType::kSymbol: {
        if (tok.text == "?") {
          // Positional placeholder: ordinals are assigned in lexical order,
          // matching the value list handed to HiqueEngine::Execute.
          Advance();
          return Expr::Placeholder(num_placeholders_++);
        }
        if (tok.text == "(") {
          Advance();
          HQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseAdditive());
          if (!MatchSymbol(")")) {
            return Status::ParseError("expected ')'");
          }
          return inner;
        }
        if (tok.text == "-") {
          // Unary minus: fold into numeric literals, otherwise 0 - expr.
          Advance();
          HQ_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
          if (inner->kind == ExprKind::kIntLit) {
            inner->int_value = -inner->int_value;
            return inner;
          }
          if (inner->kind == ExprKind::kFloatLit) {
            inner->float_value = -inner->float_value;
            return inner;
          }
          return Expr::Binary(BinaryOp::kSub, Expr::Int(0), std::move(inner));
        }
        return Status::ParseError("unexpected symbol '" + tok.text + "'");
      }
      case TokenType::kEnd:
        return Status::ParseError("unexpected end of input");
    }
    return Status::ParseError("unexpected token");
  }

  static Result<int32_t> ParseDate(const std::string& text) {
    int y, m, d;
    if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 ||
        m > 12 || d < 1 || d > 31) {
      return Status::ParseError("malformed date literal '" + text + "'");
    }
    return DateToDays(y, m, d);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int num_placeholders_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStmt>> Parse(const std::string& sql) {
  HQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

bool IsDmlStatement(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < sql.size() &&
         std::isalpha(static_cast<unsigned char>(sql[j]))) {
    ++j;
  }
  std::string word = sql.substr(i, j - i);
  for (char& c : word) c = static_cast<char>(std::toupper(c));
  return word == "INSERT" || word == "UPDATE" || word == "DELETE";
}

bool ParseExplainPrefix(const std::string& sql, bool* analyze,
                        std::string* inner) {
  auto next_word = [&sql](size_t* pos) -> std::string {
    while (*pos < sql.size() &&
           std::isspace(static_cast<unsigned char>(sql[*pos]))) {
      ++*pos;
    }
    size_t start = *pos;
    while (*pos < sql.size() &&
           std::isalpha(static_cast<unsigned char>(sql[*pos]))) {
      ++*pos;
    }
    std::string word = sql.substr(start, *pos - start);
    for (char& c : word) c = static_cast<char>(std::toupper(c));
    return word;
  };
  size_t pos = 0;
  if (next_word(&pos) != "EXPLAIN") return false;
  size_t after_explain = pos;
  bool has_analyze = next_word(&pos) == "ANALYZE";
  *analyze = has_analyze;
  *inner = sql.substr(has_analyze ? pos : after_explain);
  return true;
}

Result<std::unique_ptr<DmlStmt>> ParseDml(const std::string& sql) {
  HQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseDmlStatement();
}

}  // namespace hique::sql

#ifndef HIQUE_SQL_LEXER_H_
#define HIQUE_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace hique::sql {

enum class TokenType {
  kIdent,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kSymbol,  // punctuation / operators
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // keywords upper-cased, identifiers lower-cased
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset for diagnostics
};

/// Tokenizes a SQL string. Keywords recognised: SELECT FROM WHERE GROUP BY
/// ORDER ASC DESC LIMIT AS AND SUM COUNT AVG MIN MAX DATE INSERT INTO
/// VALUES UPDATE SET DELETE EXPLAIN ANALYZE. Symbols:
/// , ( ) * + - / = <> != < <= > >= . ; ? (positional placeholder)
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace hique::sql

#endif  // HIQUE_SQL_LEXER_H_

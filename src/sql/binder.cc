#include "sql/binder.h"

#include <algorithm>

#include "sql/parser.h"

namespace hique::sql {

const char* CmpOpToC(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

Result<Value> CoerceValueToType(const Value& lit, Type target) {
  switch (target.id) {
    case TypeId::kInt32:
      if (lit.type_id() == TypeId::kInt64 || lit.type_id() == TypeId::kInt32) {
        return Value::Int32(static_cast<int32_t>(lit.AsInt64()));
      }
      break;
    case TypeId::kInt64:
      if (lit.type_id() == TypeId::kInt64 || lit.type_id() == TypeId::kInt32)
        return Value::Int64(lit.AsInt64());
      break;
    case TypeId::kDouble:
      if (lit.type().IsNumeric()) return Value::Double(lit.AsDouble());
      break;
    case TypeId::kDate: {
      if (lit.type_id() == TypeId::kDate) return lit;
      if (lit.type_id() == TypeId::kChar) {
        int y, m, d;
        if (std::sscanf(lit.AsString().c_str(), "%d-%d-%d", &y, &m, &d) == 3) {
          return Value::Date(DateToDays(y, m, d));
        }
      }
      break;
    }
    case TypeId::kChar:
      if (lit.type_id() == TypeId::kChar) {
        return Value::Char(lit.ToString(), target.length);
      }
      break;
  }
  return Status::BindError("cannot compare " + target.ToString() +
                           " column with literal " + lit.ToString());
}

Value ZeroValueOfType(Type target) {
  switch (target.id) {
    case TypeId::kInt32:
      return Value::Int32(0);
    case TypeId::kInt64:
      return Value::Int64(0);
    case TypeId::kDouble:
      return Value::Double(0);
    case TypeId::kDate:
      return Value::Date(0);
    case TypeId::kChar:
      return Value::Char("", target.length);
  }
  return Value::Int64(0);
}

namespace {

CmpOp BinaryToCmp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return CmpOp::kEq;
    case BinaryOp::kNe:
      return CmpOp::kNe;
    case BinaryOp::kLt:
      return CmpOp::kLt;
    case BinaryOp::kLe:
      return CmpOp::kLe;
    case BinaryOp::kGt:
      return CmpOp::kGt;
    case BinaryOp::kGe:
      return CmpOp::kGe;
    default:
      HQ_CHECK_MSG(false, "not a comparison");
      return CmpOp::kEq;
  }
}

CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

class Binder {
 public:
  Binder(const SelectStmt& stmt, const Catalog& catalog)
      : stmt_(stmt), catalog_(catalog) {}

  Result<std::unique_ptr<BoundQuery>> Run() {
    query_ = std::make_unique<BoundQuery>();
    HQ_RETURN_IF_ERROR(BindFrom());
    HQ_RETURN_IF_ERROR(BindWhere());
    HQ_RETURN_IF_ERROR(BindGroupBy());
    HQ_RETURN_IF_ERROR(BindSelectList());
    HQ_RETURN_IF_ERROR(BindOrderBy());
    query_->limit = stmt_.limit;
    query_->num_placeholders = stmt_.num_placeholders;
    return std::move(query_);
  }

 private:
  Status BindFrom() {
    if (stmt_.from.empty()) {
      return Status::BindError("FROM clause is required");
    }
    for (const auto& ref : stmt_.from) {
      auto table = catalog_.GetTable(ref.table);
      if (!table.ok()) return table.status();
      for (const auto& alias : query_->aliases) {
        if (alias == ref.alias) {
          return Status::BindError("duplicate table alias '" + ref.alias +
                                   "'");
        }
      }
      query_->tables.push_back(table.value());
      query_->aliases.push_back(ref.alias);
    }
    return Status::OK();
  }

  Result<ColRef> ResolveColumn(const std::string& qualifier,
                               const std::string& column) {
    if (!qualifier.empty()) {
      for (size_t t = 0; t < query_->aliases.size(); ++t) {
        if (query_->aliases[t] == qualifier) {
          int c = query_->tables[t]->schema().FindColumn(column);
          if (c < 0) {
            return Status::BindError("no column '" + column + "' in " +
                                     qualifier);
          }
          return ColRef{static_cast<int>(t), c};
        }
      }
      return Status::BindError("unknown table alias '" + qualifier + "'");
    }
    ColRef found{-1, -1};
    for (size_t t = 0; t < query_->tables.size(); ++t) {
      int c = query_->tables[t]->schema().FindColumn(column);
      if (c >= 0) {
        if (found.table >= 0) {
          return Status::BindError("ambiguous column '" + column + "'");
        }
        found = {static_cast<int>(t), c};
      }
    }
    if (found.table < 0) {
      return Status::BindError("unknown column '" + column + "'");
    }
    return found;
  }

  Type ColumnType(ColRef ref) const {
    return query_->tables[ref.table]->schema().ColumnAt(ref.column).type;
  }
  std::string ColumnName(ColRef ref) const {
    return query_->tables[ref.table]->schema().ColumnAt(ref.column).name;
  }

  /// Binds a scalar (non-aggregate, non-comparison) expression.
  Result<ScalarExprPtr> BindScalar(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kColumnRef: {
        HQ_ASSIGN_OR_RETURN(ColRef ref, ResolveColumn(e.qualifier, e.column));
        return ScalarExpr::Column(ref, ColumnType(ref));
      }
      case ExprKind::kIntLit:
        return ScalarExpr::Literal(Value::Int64(e.int_value));
      case ExprKind::kFloatLit:
        return ScalarExpr::Literal(Value::Double(e.float_value));
      case ExprKind::kDateLit:
        return ScalarExpr::Literal(Value::Date(e.date_value));
      case ExprKind::kStringLit:
        return ScalarExpr::Literal(
            Value::Char(e.string_value,
                        static_cast<uint16_t>(e.string_value.size())));
      case ExprKind::kBinary: {
        switch (e.op) {
          case BinaryOp::kAdd:
          case BinaryOp::kSub:
          case BinaryOp::kMul:
          case BinaryOp::kDiv:
            break;
          default:
            return Status::BindError(
                "comparison not allowed in scalar expression");
        }
        bool left_ph = e.left->kind == ExprKind::kPlaceholder;
        bool right_ph = e.right->kind == ExprKind::kPlaceholder;
        ScalarExprPtr l, r;
        if (left_ph && right_ph) {
          return Status::BindError(
              "cannot infer placeholder types: both operands of an "
              "arithmetic expression are placeholders");
        }
        if (left_ph || right_ph) {
          // `expr op ?`: the placeholder takes its sibling operand's type.
          HQ_ASSIGN_OR_RETURN(ScalarExprPtr typed,
                              BindScalar(left_ph ? *e.right : *e.left));
          if (!typed->type.IsNumeric()) {
            return Status::BindError(
                "placeholder arithmetic requires a numeric sibling operand");
          }
          ScalarExprPtr ph = ScalarExpr::Literal(ZeroValueOfType(typed->type));
          ph->placeholder = (left_ph ? e.left : e.right)->placeholder;
          l = left_ph ? std::move(ph) : std::move(typed);
          r = left_ph ? std::move(typed) : std::move(ph);
        } else {
          HQ_ASSIGN_OR_RETURN(l, BindScalar(*e.left));
          HQ_ASSIGN_OR_RETURN(r, BindScalar(*e.right));
        }
        if (!l->type.IsNumeric() || !r->type.IsNumeric()) {
          return Status::BindError("arithmetic requires numeric operands");
        }
        Type t;
        char op = e.op == BinaryOp::kAdd   ? '+'
                  : e.op == BinaryOp::kSub ? '-'
                  : e.op == BinaryOp::kMul ? '*'
                                           : '/';
        if (op == '/' || l->type.id == TypeId::kDouble ||
            r->type.id == TypeId::kDouble) {
          t = Type::Double();
        } else if (l->type.id == TypeId::kInt64 ||
                   r->type.id == TypeId::kInt64) {
          t = Type::Int64();
        } else {
          t = Type::Int32();
        }
        return ScalarExpr::Arith(op, std::move(l), std::move(r), t);
      }
      case ExprKind::kAggregate:
        return Status::BindError("aggregate not allowed here");
      case ExprKind::kStar:
        return Status::BindError("* not allowed here");
      case ExprKind::kPlaceholder:
        return Status::BindError(
            "placeholder has no type here: use it in a comparison against a "
            "column or in arithmetic with a typed operand");
    }
    return Status::BindError("unsupported expression");
  }

  Status BindComparison(const Expr& e) {
    CmpOp op = BinaryToCmp(e.op);
    const Expr& lhs = *e.left;
    const Expr& rhs = *e.right;
    bool lhs_col = lhs.kind == ExprKind::kColumnRef;
    bool rhs_col = rhs.kind == ExprKind::kColumnRef;
    if (lhs_col && rhs_col) {
      HQ_ASSIGN_OR_RETURN(ColRef l, ResolveColumn(lhs.qualifier, lhs.column));
      HQ_ASSIGN_OR_RETURN(ColRef r, ResolveColumn(rhs.qualifier, rhs.column));
      if (l.table != r.table) {
        if (op != CmpOp::kEq) {
          return Status::BindError(
              "only equi-join predicates are supported across tables");
        }
        if (!(ColumnType(l) == ColumnType(r))) {
          return Status::BindError("join key type mismatch: " +
                                   ColumnName(l) + " vs " + ColumnName(r));
        }
        query_->joins.push_back({l, r});
        return Status::OK();
      }
      if (ColumnType(l).id != ColumnType(r).id) {
        return Status::BindError("column comparison type mismatch");
      }
      Filter f;
      f.column = l;
      f.op = op;
      f.rhs_is_column = true;
      f.rhs_column = r;
      query_->filters.push_back(std::move(f));
      return Status::OK();
    }
    if (!lhs_col && !rhs_col) {
      if (lhs.kind == ExprKind::kPlaceholder ||
          rhs.kind == ExprKind::kPlaceholder) {
        return Status::BindError(
            "placeholder must be compared against a column (its type is "
            "inferred from that column)");
      }
      return Status::BindError("predicate must reference a column");
    }
    const Expr& col_expr = lhs_col ? lhs : rhs;
    const Expr& lit_expr = lhs_col ? rhs : lhs;
    if (!lhs_col) op = FlipCmp(op);
    HQ_ASSIGN_OR_RETURN(ColRef ref,
                        ResolveColumn(col_expr.qualifier, col_expr.column));
    Filter f;
    f.column = ref;
    f.op = op;
    if (lit_expr.kind == ExprKind::kPlaceholder) {
      // `col op ?`: the placeholder takes the column's type; the zero value
      // stands in until Execute binds a real one through the ParamTable slot.
      f.literal = ZeroValueOfType(ColumnType(ref));
      f.placeholder = lit_expr.placeholder;
    } else {
      HQ_ASSIGN_OR_RETURN(ScalarExprPtr lit, BindScalar(lit_expr));
      if (lit->kind != ScalarKind::kLiteral) {
        return Status::BindError(
            "predicate right-hand side must be a literal or column");
      }
      HQ_ASSIGN_OR_RETURN(Value coerced,
                          CoerceValueToType(lit->literal, ColumnType(ref)));
      f.literal = std::move(coerced);
    }
    query_->filters.push_back(std::move(f));
    return Status::OK();
  }

  Status BindWhereConjunct(const Expr& e) {
    if (e.kind == ExprKind::kBinary && e.op == BinaryOp::kAnd) {
      HQ_RETURN_IF_ERROR(BindWhereConjunct(*e.left));
      return BindWhereConjunct(*e.right);
    }
    if (e.kind != ExprKind::kBinary) {
      return Status::BindError("WHERE clause must be a conjunction of "
                               "comparisons");
    }
    switch (e.op) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return BindComparison(e);
      default:
        return Status::BindError("unsupported predicate");
    }
  }

  Status BindWhere() {
    if (stmt_.where == nullptr) return Status::OK();
    return BindWhereConjunct(*stmt_.where);
  }

  Status BindGroupBy() {
    for (const auto& g : stmt_.group_by) {
      HQ_ASSIGN_OR_RETURN(ColRef ref, ResolveColumn(g->qualifier, g->column));
      query_->group_by.push_back(ref);
    }
    return Status::OK();
  }

  Status BindSelectList() {
    bool any_agg = false;
    for (const auto& item : stmt_.items) {
      if (item.expr->kind == ExprKind::kAggregate) any_agg = true;
    }
    bool grouped = any_agg || !stmt_.group_by.empty();

    for (const auto& item : stmt_.items) {
      OutputCol out;
      const Expr& e = *item.expr;
      if (e.kind == ExprKind::kAggregate) {
        AggSpec spec;
        switch (e.agg) {
          case sql::ParseAggFunc::kSum:
            spec.func = AggFunc::kSum;
            break;
          case sql::ParseAggFunc::kCount:
            spec.func = AggFunc::kCount;
            break;
          case sql::ParseAggFunc::kAvg:
            spec.func = AggFunc::kAvg;
            break;
          case sql::ParseAggFunc::kMin:
            spec.func = AggFunc::kMin;
            break;
          case sql::ParseAggFunc::kMax:
            spec.func = AggFunc::kMax;
            break;
        }
        if (e.arg != nullptr) {
          HQ_ASSIGN_OR_RETURN(spec.arg, BindScalar(*e.arg));
          if (!spec.arg->type.IsNumeric() && spec.func != AggFunc::kMin &&
              spec.func != AggFunc::kMax && spec.func != AggFunc::kCount) {
            return Status::BindError("aggregate argument must be numeric");
          }
        } else if (spec.func != AggFunc::kCount) {
          return Status::BindError("only COUNT(*) may omit its argument");
        }
        switch (spec.func) {
          case AggFunc::kCount:
            spec.out_type = Type::Int64();
            break;
          case AggFunc::kAvg:
            spec.out_type = Type::Double();
            break;
          case AggFunc::kSum:
            spec.out_type = spec.arg->type.id == TypeId::kDouble
                                ? Type::Double()
                                : Type::Int64();
            break;
          case AggFunc::kMin:
          case AggFunc::kMax:
            spec.out_type = spec.arg->type;
            break;
        }
        out.kind = OutputCol::Kind::kAggregate;
        out.index = static_cast<int>(query_->aggs.size());
        out.type = spec.out_type;
        out.name = item.alias.empty()
                       ? std::string(AggFuncName(spec.func)) + "_" +
                             std::to_string(out.index)
                       : item.alias;
        query_->aggs.push_back(std::move(spec));
      } else {
        HQ_ASSIGN_OR_RETURN(ScalarExprPtr scalar, BindScalar(e));
        if (grouped) {
          // Must be exactly a grouping column.
          if (scalar->kind != ScalarKind::kColumn) {
            return Status::BindError(
                "non-aggregate select item must be a grouping column");
          }
          auto it = std::find(query_->group_by.begin(), query_->group_by.end(),
                              scalar->column);
          if (it == query_->group_by.end()) {
            return Status::BindError("select item '" +
                                     ColumnName(scalar->column) +
                                     "' is not in GROUP BY");
          }
          out.kind = OutputCol::Kind::kGroupKey;
          out.index = static_cast<int>(it - query_->group_by.begin());
          out.type = scalar->type;
          out.name = item.alias.empty() ? ColumnName(scalar->column)
                                        : item.alias;
        } else {
          out.kind = OutputCol::Kind::kScalar;
          out.type = scalar->type;
          out.name = item.alias.empty()
                         ? (scalar->kind == ScalarKind::kColumn
                                ? ColumnName(scalar->column)
                                : "expr_" +
                                      std::to_string(query_->outputs.size()))
                         : item.alias;
          out.scalar = std::move(scalar);
        }
      }
      query_->outputs.push_back(std::move(out));
    }
    return Status::OK();
  }

  Status BindOrderBy() {
    for (const auto& item : stmt_.order_by) {
      OrderSpec spec;
      spec.desc = item.desc;
      const Expr& e = *item.expr;
      int idx = -1;
      if (e.kind == ExprKind::kIntLit) {
        // 1-based output position.
        if (e.int_value < 1 ||
            e.int_value > static_cast<int64_t>(query_->outputs.size())) {
          return Status::BindError("ORDER BY position out of range");
        }
        idx = static_cast<int>(e.int_value - 1);
      } else if (e.kind == ExprKind::kColumnRef) {
        // Try alias/name match first, then source-column match.
        for (size_t i = 0; i < query_->outputs.size(); ++i) {
          if (e.qualifier.empty() && query_->outputs[i].name == e.column) {
            idx = static_cast<int>(i);
            break;
          }
        }
        if (idx < 0) {
          auto ref = ResolveColumn(e.qualifier, e.column);
          if (ref.ok()) {
            for (size_t i = 0; i < query_->outputs.size(); ++i) {
              const OutputCol& out = query_->outputs[i];
              ColRef src{-1, -1};
              if (out.kind == OutputCol::Kind::kGroupKey) {
                src = query_->group_by[out.index];
              } else if (out.kind == OutputCol::Kind::kScalar &&
                         out.scalar->kind == ScalarKind::kColumn) {
                src = out.scalar->column;
              }
              if (src == ref.value()) {
                idx = static_cast<int>(i);
                break;
              }
            }
          }
        }
        if (idx < 0) {
          return Status::BindError("ORDER BY item '" + e.column +
                                   "' does not match an output column");
        }
      } else {
        return Status::BindError(
            "ORDER BY supports output names, columns and positions");
      }
      spec.output_index = idx;
      query_->order_by.push_back(spec);
    }
    return Status::OK();
  }

  const SelectStmt& stmt_;
  const Catalog& catalog_;
  std::unique_ptr<BoundQuery> query_;
};

}  // namespace

Result<std::unique_ptr<BoundQuery>> Bind(const SelectStmt& stmt,
                                         const Catalog& catalog) {
  Binder binder(stmt, catalog);
  return binder.Run();
}

Result<std::unique_ptr<BoundQuery>> ParseAndBind(const std::string& sql,
                                                 const Catalog& catalog) {
  HQ_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, Parse(sql));
  return Bind(*stmt, catalog);
}

}  // namespace hique::sql

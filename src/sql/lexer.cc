#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

namespace hique::sql {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kw = new std::unordered_set<std::string>{
      "SELECT", "FROM", "WHERE", "GROUP",  "BY",  "ORDER", "ASC",
      "DESC",   "LIMIT", "AS",   "AND",    "SUM", "COUNT", "AVG",
      "MIN",    "MAX",   "DATE",  "INSERT", "INTO", "VALUES",
      "UPDATE", "SET",   "DELETE", "EXPLAIN", "ANALYZE",
  };
  return *kw;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (Keywords().count(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdent;
        for (char& ch : word) ch = static_cast<char>(std::tolower(ch));
        tok.text = word;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      std::string num = input.substr(start, i - start);
      if (is_float) {
        tok.type = TokenType::kFloatLiteral;
        tok.float_value = std::stod(num);
      } else {
        tok.type = TokenType::kIntLiteral;
        tok.int_value = std::stoll(num);
      }
      tok.text = num;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.position));
      }
      tok.type = TokenType::kStringLiteral;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      std::string two = input.substr(i, 2);
      if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
        tok.type = TokenType::kSymbol;
        tok.text = two == "!=" ? "<>" : two;
        tokens.push_back(std::move(tok));
        i += 2;
        continue;
      }
    }
    if (std::string("(),*+-/=<>.;?").find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      tokens.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace hique::sql

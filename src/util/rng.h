#ifndef HIQUE_UTIL_RNG_H_
#define HIQUE_UTIL_RNG_H_

#include <cstdint>

namespace hique {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+). Used by every
/// data generator so test and benchmark inputs are reproducible across runs
/// and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 to spread the seed into two non-zero lanes.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t NextRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Fisher-Yates shuffle of `n` elements accessed through `swap(i, j)`.
  template <typename SwapFn>
  void Shuffle(uint64_t n, SwapFn swap) {
    for (uint64_t i = n; i > 1; --i) {
      uint64_t j = NextBounded(i);
      if (j != i - 1) swap(i - 1, j);
    }
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace hique

#endif  // HIQUE_UTIL_RNG_H_

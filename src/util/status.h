#ifndef HIQUE_UTIL_STATUS_H_
#define HIQUE_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/macros.h"

namespace hique {

/// Error categories used across the engine. Mirrors the RocksDB/Arrow idiom:
/// recoverable errors travel as Status values, never as exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kPlanError,
  kCodegenError,
  kCompileError,
  kExecError,
  kIoError,
  kNotImplemented,
  kInternal,
};

/// A lightweight success-or-error value. All fallible public APIs in this
/// library return Status (or Result<T> for value-producing calls).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status BindError(std::string m) {
    return Status(StatusCode::kBindError, std::move(m));
  }
  static Status PlanError(std::string m) {
    return Status(StatusCode::kPlanError, std::move(m));
  }
  static Status CodegenError(std::string m) {
    return Status(StatusCode::kCodegenError, std::move(m));
  }
  static Status CompileError(std::string m) {
    return Status(StatusCode::kCompileError, std::move(m));
  }
  static Status ExecError(std::string m) {
    return Status(StatusCode::kExecError, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status NotImplemented(std::string m) {
    return Status(StatusCode::kNotImplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-Status, in the spirit of arrow::Result. Kept deliberately small:
/// exactly the operations the engine needs.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    HQ_CHECK_MSG(!status_.ok(), "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    HQ_CHECK_MSG(ok(), status_.message().c_str());
    return value_;
  }
  T& value() & {
    HQ_CHECK_MSG(ok(), status_.message().c_str());
    return value_;
  }
  T&& value() && {
    HQ_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace hique

#endif  // HIQUE_UTIL_STATUS_H_

#ifndef HIQUE_UTIL_CACHE_INFO_H_
#define HIQUE_UTIL_CACHE_INFO_H_

#include <cstddef>

namespace hique {

/// Cache geometry of the host, probed once from sysfs. The paper's code
/// generator is hardware-conscious: staging partition counts and the map-
/// aggregation directory threshold are derived from these sizes (paper §V-B).
struct CacheInfo {
  size_t l1d_bytes = 32 * 1024;        // D1-cache
  size_t l2_bytes = 2 * 1024 * 1024;   // L2 (paper's Core 2 Duo: 2MB)
  size_t l3_bytes = 0;                 // 0 when absent
  size_t line_bytes = 64;
};

/// Returns the host cache geometry; falls back to the paper's Core 2 Duo
/// values when sysfs is unavailable (e.g., restricted containers).
const CacheInfo& HostCacheInfo();

}  // namespace hique

#endif  // HIQUE_UTIL_CACHE_INFO_H_

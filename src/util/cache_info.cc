#include "util/cache_info.h"

#include <fstream>
#include <string>

namespace hique {
namespace {

// Parses values like "32K", "2048K", "8M" from sysfs cache size files.
size_t ParseSizeFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return 0;
  std::string text;
  in >> text;
  if (text.empty()) return 0;
  size_t multiplier = 1;
  char suffix = text.back();
  if (suffix == 'K' || suffix == 'k') {
    multiplier = 1024;
    text.pop_back();
  } else if (suffix == 'M' || suffix == 'm') {
    multiplier = 1024 * 1024;
    text.pop_back();
  }
  try {
    return static_cast<size_t>(std::stoull(text)) * multiplier;
  } catch (...) {
    return 0;
  }
}

CacheInfo Probe() {
  CacheInfo info;
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int index = 0; index < 8; ++index) {
    std::string dir = base + std::to_string(index) + "/";
    std::ifstream level_in(dir + "level");
    std::ifstream type_in(dir + "type");
    if (!level_in.good() || !type_in.good()) break;
    int level = 0;
    std::string type;
    level_in >> level;
    type_in >> type;
    size_t size = ParseSizeFile(dir + "size");
    if (size == 0) continue;
    if (level == 1 && (type == "Data" || type == "Unified")) {
      info.l1d_bytes = size;
    } else if (level == 2) {
      info.l2_bytes = size;
    } else if (level == 3) {
      info.l3_bytes = size;
    }
  }
  std::ifstream line_in(base + "0/coherency_line_size");
  if (line_in.good()) {
    size_t line = 0;
    line_in >> line;
    if (line >= 16 && line <= 1024) info.line_bytes = line;
  }
  return info;
}

}  // namespace

const CacheInfo& HostCacheInfo() {
  static const CacheInfo info = Probe();
  return info;
}

}  // namespace hique

#include "util/env.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hique {
namespace env {

namespace fs = std::filesystem;

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec && !fs::exists(path)) {
    return Status::IoError("mkdir " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IoError("rm " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveTree(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IoError("rm -r " + path + ": " + ec.message());
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  std::vector<std::string> names;
  std::error_code ec;
  if (!fs::exists(path, ec)) return names;
  for (fs::directory_iterator it(path, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec)) names.push_back(it->path().filename());
  }
  if (ec) return Status::IoError("ls " + path + ": " + ec.message());
  return names;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return Status::IoError("cannot open " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.close();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Result<int64_t> FileSize(const std::string& path) {
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  if (ec) return Status::IoError("stat " + path + ": " + ec.message());
  return static_cast<int64_t>(size);
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

namespace {

struct TempDirHolder {
  std::string path;
  TempDirHolder() {
    path = "/tmp/hique_" + std::to_string(::getpid());
    std::error_code ec;
    fs::create_directories(path, ec);
  }
  ~TempDirHolder() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

}  // namespace

const std::string& ProcessTempDir() {
  static TempDirHolder* holder = new TempDirHolder();  // leaked on purpose;
  // the destructor would race with static teardown, so cleanup is handled by
  // an atexit hook instead.
  static bool registered = [] {
    std::atexit([] {
      std::error_code ec;
      fs::remove_all("/tmp/hique_" + std::to_string(::getpid()), ec);
    });
    return true;
  }();
  (void)registered;
  return holder->path;
}

int64_t EnvInt(const std::string& name, int64_t def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return def;
  return static_cast<int64_t>(parsed);
}

std::string EnvString(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  return std::string(v);
}

}  // namespace env
}  // namespace hique

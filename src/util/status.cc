#include "util/status.h"

namespace hique {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kCodegenError:
      return "CodegenError";
    case StatusCode::kCompileError:
      return "CompileError";
    case StatusCode::kExecError:
      return "ExecError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace hique

#ifndef HIQUE_UTIL_ENV_H_
#define HIQUE_UTIL_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace hique {

/// Minimal filesystem helpers used by the runtime compiler driver and the
/// file-backed storage layer.
namespace env {

/// Creates a directory (and parents). OK if it already exists.
Status MakeDirs(const std::string& path);

/// Removes a file if it exists; missing files are not an error.
Status RemoveFile(const std::string& path);

/// Recursively removes a directory tree if it exists.
Status RemoveTree(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, const std::string& contents);

/// Reads the whole file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Size of a file in bytes, or an error if it does not exist.
Result<int64_t> FileSize(const std::string& path);

bool FileExists(const std::string& path);

/// Names of the regular files directly inside `path` (no "."/".."). An
/// empty result for a missing directory.
Result<std::vector<std::string>> ListDir(const std::string& path);

/// A process-unique temporary directory under /tmp, created on first use and
/// removed at process exit.
const std::string& ProcessTempDir();

/// Integer environment variable, or `def` when unset/unparsable (used for
/// runtime knobs like HQ_THREADS).
int64_t EnvInt(const std::string& name, int64_t def);

/// String environment variable, or `def` when unset/empty (used for
/// runtime knobs like HQ_SIMD).
std::string EnvString(const std::string& name, const std::string& def);

}  // namespace env
}  // namespace hique

#endif  // HIQUE_UTIL_ENV_H_

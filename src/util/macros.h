#ifndef HIQUE_UTIL_MACROS_H_
#define HIQUE_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when `cond` is false. Used for internal invariants
/// that indicate programmer error (never for user-input validation, which
/// goes through Status).
#define HQ_CHECK(cond)                                                       \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HQ_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define HQ_CHECK_MSG(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HQ_CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define HQ_DCHECK(cond) HQ_CHECK(cond)
#else
#define HQ_DCHECK(cond) \
  do {                  \
  } while (0)
#endif

/// Propagates a non-OK Status from the evaluated expression.
#define HQ_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::hique::Status _hq_status = (expr);      \
    if (!_hq_status.ok()) return _hq_status;  \
  } while (0)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define HQ_ASSIGN_OR_RETURN(lhs, expr)                   \
  auto HQ_CONCAT_(_hq_res_, __LINE__) = (expr);          \
  if (!HQ_CONCAT_(_hq_res_, __LINE__).ok())              \
    return HQ_CONCAT_(_hq_res_, __LINE__).status();      \
  lhs = std::move(HQ_CONCAT_(_hq_res_, __LINE__)).value()

#define HQ_CONCAT_INNER_(a, b) a##b
#define HQ_CONCAT_(a, b) HQ_CONCAT_INNER_(a, b)

#endif  // HIQUE_UTIL_MACROS_H_

#ifndef HIQUE_UTIL_TIMER_H_
#define HIQUE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hique {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and the
/// query-preparation cost accounting (Table III).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hique

#endif  // HIQUE_UTIL_TIMER_H_

#ifndef HIQUE_UTIL_HASH_H_
#define HIQUE_UTIL_HASH_H_

#include <cstdint>
#include <cstring>

namespace hique {

/// 64-bit finalizer (murmur3 fmix64). This is also the hash the code
/// generator inlines into generated partitioning code, so engine-side
/// partition counts and generated-code bucket assignment always agree.
inline uint64_t HashMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

/// Hash of an arbitrary byte string (FNV-1a folded through HashMix64).
inline uint64_t HashBytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return HashMix64(h);
}

}  // namespace hique

#endif  // HIQUE_UTIL_HASH_H_

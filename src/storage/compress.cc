#include "storage/compress.h"

#include <cstring>

#include "codegen/runtime_abi.h"  // hq_unpack_bits: decode parity with codegen
#include "storage/table.h"
#include "util/macros.h"

namespace hique {
namespace {

bool IsIntFamily(TypeId id) {
  return id == TypeId::kInt32 || id == TypeId::kInt64 || id == TypeId::kDate;
}

int64_t ReadInt(const uint8_t* p, TypeId id) {
  if (id == TypeId::kInt64) {
    int64_t v;
    std::memcpy(&v, p, 8);
    return v;
  }
  int32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void WriteInt(uint8_t* p, TypeId id, int64_t v) {
  if (id == TypeId::kInt64) {
    std::memcpy(p, &v, 8);
  } else {
    int32_t n = static_cast<int32_t>(v);
    std::memcpy(p, &n, 4);
  }
}

uint64_t MaskFor(uint32_t bits) {
  return bits == 0 ? 0 : (~0ull >> (64 - bits));
}

/// ORs a `bits`-wide value into an LSB-first packed segment. The segment is
/// pre-zeroed and the page capacity rule leaves 8 bytes of slack past every
/// segment, so the unaligned 8-byte window stays inside the page.
void PackBits(uint8_t* seg, uint64_t idx, uint32_t bits, uint64_t u) {
  uint64_t bo = idx * bits;
  uint8_t* p = seg + (bo >> 3);
  uint64_t w;
  std::memcpy(&w, p, 8);
  w |= u << (bo & 7u);
  std::memcpy(p, &w, 8);
}

/// Page tuple capacity under `cols`: the largest nt whose aligned segments
/// (plus the 8-byte unaligned-window slack) fit the page data area.
uint32_t CapacityFor(const Schema& schema,
                     const std::vector<ColumnCodec>& cols) {
  auto fits = [&](uint32_t nt) {
    uint64_t total = 0;
    for (size_t c = 0; c < schema.NumColumns(); ++c) {
      total += (SegmentBytes(cols[c], schema.ColumnAt(c).type.ByteSize(), nt) +
                7ull) &
               ~7ull;
    }
    return total + 8 <= kPageDataSize;
  };
  if (!fits(1)) return 0;
  uint32_t nt = 1;
  while (nt < kPageDataSize * 8u && fits(nt + 1)) ++nt;
  return nt;
}

}  // namespace

uint32_t BitsForRange(uint64_t v) {
  return v == 0 ? 0 : 64u - static_cast<uint32_t>(__builtin_clzll(v));
}

uint64_t SegmentBytes(const ColumnCodec& cc, uint32_t width, uint32_t nt) {
  if (nt == 0) return 0;
  switch (cc.enc) {
    case ColEncoding::kRaw:
      return static_cast<uint64_t>(nt) * width;
    case ColEncoding::kFOR:
      return cc.bits == 0 ? 0
                          : (static_cast<uint64_t>(nt) * cc.bits + 7) / 8;
    case ColEncoding::kDelta:
      return 8 + (nt > 1 && cc.bits > 0
                      ? (static_cast<uint64_t>(nt - 1) * cc.bits + 7) / 8
                      : 0);
    case ColEncoding::kDict:
      return cc.bits == 0 ? 0
                          : (static_cast<uint64_t>(nt) * cc.bits + 7) / 8;
  }
  return 0;
}

TableCodec ChooseTableCodec(const Schema& schema, const TableStats& stats) {
  TableCodec tc;
  tc.cols.assign(schema.NumColumns(), ColumnCodec{});
  if (!stats.valid || stats.rows == 0 ||
      stats.columns.size() != schema.NumColumns()) {
    return tc;  // disabled
  }
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    const Type& t = schema.ColumnAt(c).type;
    const ColumnStats& cs = stats.columns[c];
    ColumnCodec& cc = tc.cols[c];
    if (!cs.valid) continue;
    if (IsIntFamily(t.id)) {
      const int64_t lo = cs.min.AsInt64();
      const int64_t hi = cs.max.AsInt64();
      const uint64_t range =
          static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
      const uint32_t fbits = BitsForRange(range);
      const uint32_t width_bits = t.ByteSize() * 8;
      const bool for_ok = fbits < width_bits && fbits <= kMaxPackedBits;
      uint32_t best_bits = for_ok ? fbits : width_bits;
      if (cs.sorted_asc && cs.max_step >= 0) {
        const uint32_t dbits =
            BitsForRange(static_cast<uint64_t>(cs.max_step));
        if (dbits <= kMaxPackedBits && dbits < best_bits) {
          cc.enc = ColEncoding::kDelta;
          cc.bits = dbits;
          continue;
        }
      }
      if (for_ok) {
        cc.enc = ColEncoding::kFOR;
        cc.bits = fbits;
        cc.base = lo;
      }
    } else if (t.id == TypeId::kChar) {
      if (cs.distinct_exact && cs.distinct >= 1 &&
          cs.distinct <= kMaxDictEntries) {
        const uint32_t cbits = BitsForRange(cs.distinct - 1);
        if (cbits < static_cast<uint32_t>(t.length) * 8 &&
            cbits <= kMaxPackedBits) {
          cc.enc = ColEncoding::kDict;
          cc.bits = cbits;
          cc.dict_entries = cs.distinct;
        }
      }
    }
    // kDouble (and anything unmatched) stays kRaw.
  }
  tc.tuples_per_cpage = CapacityFor(schema, tc.cols);
  // Worth it only when a page holds strictly more tuples than NSM packing.
  tc.enabled = tc.tuples_per_cpage > Page::TuplesPerPage(schema.TupleSize());
  return tc;
}

Status EncodePage(const TableCodec& codec, const Schema& schema,
                  const uint8_t* tuples, uint32_t nt,
                  const std::vector<std::vector<uint8_t>>& dicts, Page* out) {
  if (nt > codec.tuples_per_cpage) {
    return Status::InvalidArgument("EncodePage: tuple count exceeds capacity");
  }
  const uint32_t ts = schema.TupleSize();
  out->num_tuples = nt;
  out->reserved = kCompressedPageMagic;
  std::memset(out->data, 0, kPageDataSize);
  uint64_t off = 0;
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    const Type& t = schema.ColumnAt(c).type;
    const uint32_t coff = schema.OffsetAt(c);
    const ColumnCodec& cc = codec.cols[c];
    const uint32_t width = t.ByteSize();
    uint8_t* seg = out->data + off;
    off = (off + SegmentBytes(cc, width, nt) + 7ull) & ~7ull;
    if (off + 8 > kPageDataSize) {
      return Status::ExecError("EncodePage: segments overflow the page");
    }
    const uint64_t mask = MaskFor(cc.bits);
    switch (cc.enc) {
      case ColEncoding::kRaw:
        for (uint32_t i = 0; i < nt; ++i) {
          std::memcpy(seg + static_cast<uint64_t>(i) * width,
                      tuples + static_cast<uint64_t>(i) * ts + coff, width);
        }
        break;
      case ColEncoding::kFOR:
        for (uint32_t i = 0; i < nt; ++i) {
          const int64_t v =
              ReadInt(tuples + static_cast<uint64_t>(i) * ts + coff, t.id);
          const uint64_t u =
              static_cast<uint64_t>(v) - static_cast<uint64_t>(cc.base);
          if (u > mask) {
            return Status::ExecError(
                "EncodePage: value outside the FOR frame (stale statistics)");
          }
          if (cc.bits != 0) PackBits(seg, i, cc.bits, u);
        }
        break;
      case ColEncoding::kDelta: {
        int64_t prev = 0;
        for (uint32_t i = 0; i < nt; ++i) {
          const int64_t v =
              ReadInt(tuples + static_cast<uint64_t>(i) * ts + coff, t.id);
          if (i == 0) {
            std::memcpy(seg, &v, 8);
          } else {
            if (v < prev) {
              return Status::ExecError(
                  "EncodePage: delta column not sorted (stale statistics)");
            }
            const uint64_t d =
                static_cast<uint64_t>(v) - static_cast<uint64_t>(prev);
            if (d > mask) {
              return Status::ExecError(
                  "EncodePage: delta exceeds the packed width "
                  "(stale statistics)");
            }
            if (cc.bits != 0) PackBits(seg + 8, i - 1, cc.bits, d);
          }
          prev = v;
        }
        break;
      }
      case ColEncoding::kDict: {
        const std::vector<uint8_t>& blob = dicts[c];
        const uint32_t len = t.length;
        if (blob.size() != cc.dict_entries * static_cast<uint64_t>(len)) {
          return Status::ExecError("EncodePage: dictionary blob size mismatch");
        }
        for (uint32_t i = 0; i < nt; ++i) {
          const uint8_t* v = tuples + static_cast<uint64_t>(i) * ts + coff;
          uint64_t lo = 0, hi = cc.dict_entries;
          while (lo < hi) {
            const uint64_t mid = lo + (hi - lo) / 2;
            if (std::memcmp(blob.data() + mid * len, v, len) < 0) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          if (lo >= cc.dict_entries ||
              std::memcmp(blob.data() + lo * len, v, len) != 0) {
            return Status::ExecError(
                "EncodePage: value missing from the dictionary "
                "(stale statistics)");
          }
          if (cc.bits != 0) PackBits(seg, i, cc.bits, lo);
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status DecodePage(const TableCodec& codec, const Schema& schema,
                  const Page& page,
                  const std::vector<std::vector<uint8_t>>& dicts,
                  std::vector<uint8_t>* out) {
  if (page.reserved != kCompressedPageMagic) {
    return Status::ExecError("DecodePage: missing compressed-page marker");
  }
  const uint32_t nt = page.num_tuples;
  if (nt > codec.tuples_per_cpage) {
    return Status::ExecError("DecodePage: tuple count exceeds codec capacity");
  }
  const uint32_t ts = schema.TupleSize();
  const size_t base_size = out->size();
  out->resize(base_size + static_cast<uint64_t>(nt) * ts, 0);
  uint8_t* rows = out->data() + base_size;
  uint64_t off = 0;
  for (size_t c = 0; c < schema.NumColumns(); ++c) {
    const Type& t = schema.ColumnAt(c).type;
    const uint32_t coff = schema.OffsetAt(c);
    const ColumnCodec& cc = codec.cols[c];
    const uint32_t width = t.ByteSize();
    const uint8_t* seg = page.data + off;
    off = (off + SegmentBytes(cc, width, nt) + 7ull) & ~7ull;
    if (off + 8 > kPageDataSize) {
      return Status::ExecError("DecodePage: segments overflow the page");
    }
    const uint64_t mask = MaskFor(cc.bits);
    switch (cc.enc) {
      case ColEncoding::kRaw:
        for (uint32_t i = 0; i < nt; ++i) {
          std::memcpy(rows + static_cast<uint64_t>(i) * ts + coff,
                      seg + static_cast<uint64_t>(i) * width, width);
        }
        break;
      case ColEncoding::kFOR:
        for (uint32_t i = 0; i < nt; ++i) {
          const uint64_t u =
              cc.bits == 0 ? 0 : hq_unpack_bits(seg, i, cc.bits, mask);
          WriteInt(rows + static_cast<uint64_t>(i) * ts + coff, t.id,
                   cc.base + static_cast<int64_t>(u));
        }
        break;
      case ColEncoding::kDelta: {
        int64_t v = 0;
        if (nt > 0) std::memcpy(&v, seg, 8);
        for (uint32_t i = 0; i < nt; ++i) {
          if (i > 0 && cc.bits != 0) {
            v += static_cast<int64_t>(
                hq_unpack_bits(seg + 8, i - 1, cc.bits, mask));
          }
          WriteInt(rows + static_cast<uint64_t>(i) * ts + coff, t.id, v);
        }
        break;
      }
      case ColEncoding::kDict: {
        const std::vector<uint8_t>& blob = dicts[c];
        const uint32_t len = t.length;
        if (blob.size() != cc.dict_entries * static_cast<uint64_t>(len)) {
          return Status::ExecError("DecodePage: dictionary blob size mismatch");
        }
        for (uint32_t i = 0; i < nt; ++i) {
          const uint64_t code =
              cc.bits == 0 ? 0 : hq_unpack_bits(seg, i, cc.bits, mask);
          if (code >= cc.dict_entries) {
            return Status::ExecError(
                "DecodePage: dictionary code out of range (corrupt page)");
          }
          std::memcpy(rows + static_cast<uint64_t>(i) * ts + coff,
                      blob.data() + code * len, len);
        }
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace hique

#include "storage/schema.h"

#include <cstring>

namespace hique {

namespace {
uint32_t AlignUp(uint32_t v, uint32_t a) { return (v + a - 1) / a * a; }
}  // namespace

void Schema::AddColumn(const std::string& name, Type type) {
  uint32_t align = type.Alignment();
  uint32_t offset = AlignUp(end_, align);
  columns_.push_back({name, type});
  offsets_.push_back(offset);
  if (align > max_align_) max_align_ = align;
  end_ = offset + type.ByteSize();
  // The tuple footprint keeps 8-byte granularity so back-to-back tuples
  // preserve every field's alignment inside a page.
  tuple_size_ = AlignUp(end_, 8u);
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Value Schema::GetValue(const uint8_t* tuple, size_t i) const {
  const Column& col = columns_[i];
  const uint8_t* p = tuple + offsets_[i];
  switch (col.type.id) {
    case TypeId::kInt32: {
      int32_t v;
      std::memcpy(&v, p, 4);
      return Value::Int32(v);
    }
    case TypeId::kDate: {
      int32_t v;
      std::memcpy(&v, p, 4);
      return Value::Date(v);
    }
    case TypeId::kInt64: {
      int64_t v;
      std::memcpy(&v, p, 8);
      return Value::Int64(v);
    }
    case TypeId::kDouble: {
      double v;
      std::memcpy(&v, p, 8);
      return Value::Double(v);
    }
    case TypeId::kChar: {
      return Value::Char(
          std::string(reinterpret_cast<const char*>(p), col.type.length),
          col.type.length);
    }
  }
  return Value();
}

void Schema::SetValue(uint8_t* tuple, size_t i, const Value& v) const {
  const Column& col = columns_[i];
  uint8_t* p = tuple + offsets_[i];
  switch (col.type.id) {
    case TypeId::kInt32:
    case TypeId::kDate: {
      int32_t x = v.AsInt32();
      std::memcpy(p, &x, 4);
      break;
    }
    case TypeId::kInt64: {
      int64_t x = v.AsInt64();
      std::memcpy(p, &x, 8);
      break;
    }
    case TypeId::kDouble: {
      double x = v.AsDouble();
      std::memcpy(p, &x, 8);
      break;
    }
    case TypeId::kChar: {
      const std::string& s = v.AsString();
      size_t n = s.size() < col.type.length ? s.size() : col.type.length;
      std::memcpy(p, s.data(), n);
      if (n < col.type.length) std::memset(p + n, ' ', col.type.length - n);
      break;
    }
  }
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!(columns_[i].type == other.columns_[i].type)) return false;
    if (columns_[i].name != other.columns_[i].name) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::string s;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) s += ", ";
    s += columns_[i].name + " " + columns_[i].type.ToString();
  }
  return s;
}

}  // namespace hique

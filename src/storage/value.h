#ifndef HIQUE_STORAGE_VALUE_H_
#define HIQUE_STORAGE_VALUE_H_

#include <cstdint>
#include <string>

#include "storage/types.h"
#include "util/macros.h"

namespace hique {

/// A boxed scalar. Values appear only at the engine boundary (loading rows,
/// returning results, binding literals, the reference executor); the holistic
/// engine's inner loops never touch them — that is the point of the paper.
class Value {
 public:
  Value() : type_(Type::Int32()), i_(0) {}

  static Value Int32(int32_t v) { return Value(Type::Int32(), v); }
  static Value Int64(int64_t v) { return Value(Type::Int64(), v); }
  static Value Double(double v) {
    Value val(Type::Double(), 0);
    val.d_ = v;
    return val;
  }
  static Value Date(int32_t days) { return Value(Type::Date(), days); }
  static Value Char(std::string s, uint16_t width) {
    Value val(Type::Char(width), 0);
    s.resize(width, ' ');  // space padded, as stored in pages
    val.s_ = std::move(s);
    return val;
  }

  const Type& type() const { return type_; }
  TypeId type_id() const { return type_.id; }

  int32_t AsInt32() const {
    HQ_DCHECK(type_.id == TypeId::kInt32 || type_.id == TypeId::kDate);
    return static_cast<int32_t>(i_);
  }
  int64_t AsInt64() const { return i_; }
  double AsDouble() const {
    return type_.id == TypeId::kDouble ? d_ : static_cast<double>(i_);
  }
  const std::string& AsString() const { return s_; }

  /// Three-way comparison with SQL semantics; both values must have the same
  /// TypeId (numeric cross-type comparison is resolved by the binder).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Display rendering (CHAR values are shown right-trimmed).
  std::string ToString() const;

 private:
  Value(Type t, int64_t i) : type_(t), i_(i) {}

  Type type_;
  int64_t i_ = 0;
  double d_ = 0;
  std::string s_;
};

}  // namespace hique

#endif  // HIQUE_STORAGE_VALUE_H_

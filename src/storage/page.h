#ifndef HIQUE_STORAGE_PAGE_H_
#define HIQUE_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace hique {

/// Fixed page geometry, matching the paper (§IV): tuples are stored
/// consecutively in 4096-byte NSM pages. The 8-byte header keeps the tuple
/// area 8-aligned so generated code can cast field pointers directly.
inline constexpr uint32_t kPageSize = 4096;
inline constexpr uint32_t kPageHeaderSize = 8;
inline constexpr uint32_t kPageDataSize = kPageSize - kPageHeaderSize;

/// `Page::reserved` value marking a compressed columnar page (see
/// storage/compress.h). Plain NSM pages keep reserved == 0; the engine-side
/// decoder validates the marker before trusting any segment arithmetic.
inline constexpr uint32_t kCompressedPageMagic = 0x48435A31;  // "HCZ1"

/// An NSM page: [num_tuples:u32][reserved:u32][tuple0][tuple1]...
/// Layout is identical on the engine side and inside generated query code
/// (see codegen/runtime_abi.h) — the two views must never diverge.
struct alignas(8) Page {
  uint32_t num_tuples;
  uint32_t reserved;
  uint8_t data[kPageDataSize];

  void Reset() {
    num_tuples = 0;
    reserved = 0;
  }

  static uint32_t TuplesPerPage(uint32_t tuple_size) {
    return kPageDataSize / tuple_size;
  }

  uint8_t* TupleAt(uint32_t slot, uint32_t tuple_size) {
    return data + static_cast<size_t>(slot) * tuple_size;
  }
  const uint8_t* TupleAt(uint32_t slot, uint32_t tuple_size) const {
    return data + static_cast<size_t>(slot) * tuple_size;
  }
};

static_assert(sizeof(Page) == kPageSize, "Page must be exactly 4096 bytes");

}  // namespace hique

#endif  // HIQUE_STORAGE_PAGE_H_

#include "storage/btree.h"

#include <cstdlib>
#include <cstring>

#include "util/macros.h"

namespace hique {

// Node layout inside a 1024-byte slot.
//   header: count:u16, is_leaf:u8, pad:u8, next:u32 (leaf chain)
//   leaf:  keys[kLeafCap] int64, rids[kLeafCap] u64
//   inner: keys[kInnerCap] int64, children[kInnerCap + 1] u32
struct BTree::Node {
  uint16_t count;
  uint8_t is_leaf;
  uint8_t pad;
  NodeId next;

  static constexpr uint32_t kHeader = 8;
  static constexpr uint32_t kLeafCap = (kNodeSize - kHeader) / 16;       // 63
  static constexpr uint32_t kInnerCap = (kNodeSize - kHeader - 4) / 12;  // 84

  int64_t* Keys() {
    return reinterpret_cast<int64_t*>(reinterpret_cast<uint8_t*>(this) +
                                      kHeader);
  }
  uint64_t* Rids() { return reinterpret_cast<uint64_t*>(Keys() + kLeafCap); }
  NodeId* Children() {
    return reinterpret_cast<NodeId*>(Keys() + kInnerCap);
  }
  const int64_t* Keys() const { return const_cast<Node*>(this)->Keys(); }
  const uint64_t* Rids() const { return const_cast<Node*>(this)->Rids(); }
  const NodeId* Children() const {
    return const_cast<Node*>(this)->Children();
  }

  // First position with keys[pos] >= key.
  uint32_t LowerBound(int64_t key) const {
    uint32_t lo = 0, hi = count;
    const int64_t* keys = Keys();
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  // First position with keys[pos] > key.
  uint32_t UpperBound(int64_t key) const {
    uint32_t lo = 0, hi = count;
    const int64_t* keys = Keys();
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (keys[mid] <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

static_assert(BTree::kNodeSize % sizeof(int64_t) == 0, "node alignment");

BTree::BTree() { root_ = AllocNode(/*leaf=*/true); }

BTree::~BTree() {
  for (uint8_t* p : pages_) std::free(p);
}

BTree::Node* BTree::GetNode(NodeId id) const {
  HQ_DCHECK(id != kInvalidNode);
  uint8_t* page = pages_[id / kNodesPerPage];
  return reinterpret_cast<Node*>(page + (id % kNodesPerPage) * kNodeSize);
}

BTree::NodeId BTree::AllocNode(bool leaf) {
  if (next_node_ % kNodesPerPage == 0) {
    void* mem = nullptr;
    int rc = posix_memalign(&mem, kPageSize, kPageSize);
    HQ_CHECK_MSG(rc == 0 && mem != nullptr, "btree page allocation failed");
    std::memset(mem, 0, kPageSize);
    pages_.push_back(static_cast<uint8_t*>(mem));
  }
  NodeId id = next_node_++;
  Node* n = GetNode(id);
  n->count = 0;
  n->is_leaf = leaf ? 1 : 0;
  n->next = kInvalidNode;
  return id;
}

bool BTree::InsertRecurse(NodeId node_id, int64_t key, Rid rid,
                          int64_t* split_key, NodeId* new_node) {
  Node* node = GetNode(node_id);
  if (node->is_leaf) {
    uint32_t pos = node->UpperBound(key);  // duplicates append after equals
    int64_t* keys = node->Keys();
    uint64_t* rids = node->Rids();
    std::memmove(keys + pos + 1, keys + pos, (node->count - pos) * 8);
    std::memmove(rids + pos + 1, rids + pos, (node->count - pos) * 8);
    keys[pos] = key;
    rids[pos] = rid;
    ++node->count;
    if (node->count < Node::kLeafCap) return false;

    // Split the full leaf in half; right half moves to a new node.
    NodeId right_id = AllocNode(/*leaf=*/true);
    Node* left = GetNode(node_id);  // realloc-safe: refetch after AllocNode
    Node* right = GetNode(right_id);
    uint32_t mid = left->count / 2;
    right->count = left->count - mid;
    std::memcpy(right->Keys(), left->Keys() + mid, right->count * 8);
    std::memcpy(right->Rids(), left->Rids() + mid, right->count * 8);
    left->count = static_cast<uint16_t>(mid);
    right->next = left->next;
    left->next = right_id;
    *split_key = right->Keys()[0];
    *new_node = right_id;
    return true;
  }

  uint32_t pos = node->UpperBound(key);
  NodeId child = node->Children()[pos];
  int64_t child_split_key;
  NodeId child_new_node;
  if (!InsertRecurse(child, key, rid, &child_split_key, &child_new_node)) {
    return false;
  }
  node = GetNode(node_id);  // refetch: child split may have allocated pages
  uint32_t ipos = node->UpperBound(child_split_key);
  int64_t* keys = node->Keys();
  NodeId* children = node->Children();
  std::memmove(keys + ipos + 1, keys + ipos, (node->count - ipos) * 8);
  std::memmove(children + ipos + 2, children + ipos + 1,
               (node->count - ipos) * 4);
  keys[ipos] = child_split_key;
  children[ipos + 1] = child_new_node;
  ++node->count;
  if (node->count < Node::kInnerCap) return false;

  NodeId right_id = AllocNode(/*leaf=*/false);
  Node* left = GetNode(node_id);
  Node* right = GetNode(right_id);
  uint32_t mid = left->count / 2;  // keys[mid] is promoted
  *split_key = left->Keys()[mid];
  right->count = static_cast<uint16_t>(left->count - mid - 1);
  std::memcpy(right->Keys(), left->Keys() + mid + 1, right->count * 8);
  std::memcpy(right->Children(), left->Children() + mid + 1,
              (right->count + 1) * 4);
  left->count = static_cast<uint16_t>(mid);
  *new_node = right_id;
  return true;
}

void BTree::Insert(int64_t key, Rid rid) {
  int64_t split_key;
  NodeId new_node;
  if (InsertRecurse(root_, key, rid, &split_key, &new_node)) {
    NodeId new_root = AllocNode(/*leaf=*/false);
    Node* r = GetNode(new_root);
    r->count = 1;
    r->Keys()[0] = split_key;
    r->Children()[0] = root_;
    r->Children()[1] = new_node;
    root_ = new_root;
    ++height_;
  }
  ++size_;
}

BTree::NodeId BTree::FindLeaf(int64_t key) const {
  NodeId id = root_;
  Node* node = GetNode(id);
  while (!node->is_leaf) {
    id = node->Children()[node->UpperBound(key)];
    node = GetNode(id);
  }
  return id;
}

void BTree::Lookup(int64_t key, std::vector<Rid>* out) const {
  // Duplicates of `key` may start in an earlier leaf; descend with
  // LowerBound semantics by scanning from the first candidate leaf.
  NodeId id = root_;
  Node* node = GetNode(id);
  while (!node->is_leaf) {
    id = node->Children()[node->LowerBound(key)];
    node = GetNode(id);
  }
  while (id != kInvalidNode) {
    node = GetNode(id);
    uint32_t pos = node->LowerBound(key);
    if (pos == node->count) {
      if (node->count > 0 && node->Keys()[node->count - 1] > key) return;
      id = node->next;
      continue;
    }
    for (uint32_t i = pos; i < node->count; ++i) {
      if (node->Keys()[i] != key) return;
      out->push_back(node->Rids()[i]);
    }
    id = node->next;
  }
}

void BTree::RangeScan(int64_t lo, int64_t hi,
                      std::vector<std::pair<int64_t, Rid>>* out) const {
  if (lo > hi) return;
  NodeId id = root_;
  Node* node = GetNode(id);
  while (!node->is_leaf) {
    id = node->Children()[node->LowerBound(lo)];
    node = GetNode(id);
  }
  while (id != kInvalidNode) {
    node = GetNode(id);
    for (uint32_t i = node->LowerBound(lo); i < node->count; ++i) {
      if (node->Keys()[i] > hi) return;
      out->emplace_back(node->Keys()[i], node->Rids()[i]);
    }
    id = node->next;
  }
}

bool BTree::Erase(int64_t key, Rid rid) {
  NodeId id = root_;
  Node* node = GetNode(id);
  while (!node->is_leaf) {
    id = node->Children()[node->LowerBound(key)];
    node = GetNode(id);
  }
  while (id != kInvalidNode) {
    node = GetNode(id);
    for (uint32_t i = node->LowerBound(key); i < node->count; ++i) {
      if (node->Keys()[i] > key) return false;
      if (node->Keys()[i] == key && node->Rids()[i] == rid) {
        std::memmove(node->Keys() + i, node->Keys() + i + 1,
                     (node->count - i - 1) * 8);
        std::memmove(node->Rids() + i, node->Rids() + i + 1,
                     (node->count - i - 1) * 8);
        --node->count;
        --size_;
        return true;
      }
    }
    id = node->next;
  }
  return false;
}

namespace {
Status Violation(const std::string& what) {
  return Status::Internal("btree invariant violated: " + what);
}
}  // namespace

Status BTree::CheckInvariants() const {
  // Walk the leaf chain from the leftmost leaf and verify global ordering.
  NodeId id = root_;
  Node* node = GetNode(id);
  uint32_t depth = 1;
  while (!node->is_leaf) {
    if (node->count == 0) return Violation("empty inner node");
    id = node->Children()[0];
    node = GetNode(id);
    ++depth;
  }
  if (depth != height_) return Violation("height mismatch");
  uint64_t seen = 0;
  bool have_prev = false;
  int64_t prev = 0;
  while (id != kInvalidNode) {
    node = GetNode(id);
    for (uint32_t i = 0; i < node->count; ++i) {
      int64_t k = node->Keys()[i];
      if (have_prev && k < prev) return Violation("leaf keys out of order");
      prev = k;
      have_prev = true;
      ++seen;
    }
    if (node->count >= Node::kLeafCap) return Violation("overfull leaf");
    id = node->next;
  }
  if (seen != size_) return Violation("leaf chain misses entries");
  return Status::OK();
}

}  // namespace hique

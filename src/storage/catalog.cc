#include "storage/catalog.h"

#include "util/hash.h"

namespace hique {

uint64_t Catalog::StatsVersion() const {
  // Order-independent mix (unordered_map iteration order must not matter):
  // XOR of per-table digests, each binding the table's name to its version.
  uint64_t version = 0;
  for (const auto& [name, table] : tables_) {
    uint64_t digest = HashBytes(name.data(), name.size());
    version ^= HashMix64(digest + table->stats_version() + 1);
  }
  return version;
}

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

Result<Table*> Catalog::AdoptTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) != 0;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace hique

#ifndef HIQUE_STORAGE_BTREE_H_
#define HIQUE_STORAGE_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace hique {

/// Record identifier: page number << 16 | slot.
using Rid = uint64_t;

inline Rid MakeRid(uint64_t page_no, uint32_t slot) {
  return (page_no << 16) | slot;
}
inline uint64_t RidPage(Rid rid) { return rid >> 16; }
inline uint32_t RidSlot(Rid rid) { return static_cast<uint32_t>(rid & 0xFFFF); }

/// Memory-efficient index in the style the paper adopts (§IV): fractal
/// B+-trees [Chen et al., SIGMOD'02], where each 4096-byte physical page is
/// divided into four 1024-byte tree nodes. Keys are int64 (all scalar column
/// types embed into int64 order-preservingly), values are Rids.
///
/// Supported operations: insert, exact lookup (all duplicates), range scan,
/// and lazy delete (key removal without structural rebalancing — standard
/// for read-mostly analytical indexes).
class BTree {
 public:
  static constexpr uint32_t kNodeSize = 1024;
  static constexpr uint32_t kNodesPerPage = kPageSize / kNodeSize;

  BTree();
  ~BTree();
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  void Insert(int64_t key, Rid rid);

  /// Appends all rids with exactly `key` to `out`.
  void Lookup(int64_t key, std::vector<Rid>* out) const;

  /// Appends all (key, rid) pairs with lo <= key <= hi, in key order.
  void RangeScan(int64_t lo, int64_t hi,
                 std::vector<std::pair<int64_t, Rid>>* out) const;

  /// Removes one (key, rid) entry. Returns false if not present.
  bool Erase(int64_t key, Rid rid);

  uint64_t size() const { return size_; }
  uint32_t height() const { return height_; }
  uint64_t physical_pages() const { return pages_.size(); }

  /// Validation hook for tests: checks key ordering, fanout bounds and leaf
  /// chain consistency. Returns a failed status describing the violation.
  Status CheckInvariants() const;

 private:
  struct Node;
  using NodeId = uint32_t;
  static constexpr NodeId kInvalidNode = 0xFFFFFFFF;

  Node* GetNode(NodeId id) const;
  NodeId AllocNode(bool leaf);
  NodeId FindLeaf(int64_t key) const;

  // Inserts into a leaf/inner node, splitting when full. On split, sets
  // *split_key / *new_node for the parent to absorb.
  bool InsertRecurse(NodeId node_id, int64_t key, Rid rid, int64_t* split_key,
                     NodeId* new_node);

  std::vector<uint8_t*> pages_;  // 4096-byte aligned physical pages
  uint32_t next_node_ = 0;       // bump allocator over page slots
  NodeId root_ = kInvalidNode;
  uint64_t size_ = 0;
  uint32_t height_ = 1;
};

}  // namespace hique

#endif  // HIQUE_STORAGE_BTREE_H_

#ifndef HIQUE_STORAGE_TABLE_H_
#define HIQUE_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/compress.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace hique {

/// Per-column statistics gathered by Table::ComputeStats. The optimizer uses
/// them for cardinality estimation and, critically, for choosing map
/// aggregation / fine partitioning (paper §V-B depends on knowing attribute
/// domains).
struct ColumnStats {
  Value min;
  Value max;
  uint64_t distinct = 0;
  bool distinct_exact = false;
  // Compression inputs (int-family columns only): is the column
  // non-decreasing in scan order, and if so what is the largest adjacent
  // step? Drives the delta-encoding choice in ChooseTableCodec.
  bool sorted_asc = false;
  int64_t max_step = 0;
  bool valid = false;
};

struct TableStats {
  uint64_t rows = 0;
  std::vector<ColumnStats> columns;
  bool valid = false;
};

/// All pages of a table pinned in memory for the duration of a query
/// (main-memory execution, paper §VI). Releases pins on destruction.
class PinnedPages {
 public:
  PinnedPages() = default;
  ~PinnedPages() { Release(); }
  PinnedPages(PinnedPages&& other) noexcept { *this = std::move(other); }
  PinnedPages& operator=(PinnedPages&& other) noexcept;
  PinnedPages(const PinnedPages&) = delete;
  PinnedPages& operator=(const PinnedPages&) = delete;

  const std::vector<Page*>& pages() const { return pages_; }
  void Release();

 private:
  friend class Table;
  std::vector<Page*> pages_;
  BufferManager* buffer_manager_ = nullptr;  // null for in-memory tables
  FileId file_ = 0;
  // Bypass mode: the pages are query-local copies (table bigger than the
  // buffer pool) owned by this object and freed on Release.
  bool owns_ = false;
};

/// An NSM table: fixed-length tuples packed into 4096-byte pages. Tables are
/// either memory-resident (the default; malloc'd pages) or file-backed
/// through the BufferManager.
class Table {
 public:
  /// Creates a memory-resident table.
  Table(std::string name, Schema schema);

  /// Creates a file-backed table whose pages live in `buffer_manager`.
  static Result<std::unique_ptr<Table>> CreateFileBacked(
      std::string name, Schema schema, BufferManager* buffer_manager,
      const std::string& path);

  ~Table();
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint32_t tuple_size() const { return schema_.TupleSize(); }
  uint32_t tuples_per_page() const { return tuples_per_page_; }
  uint64_t NumTuples() const { return num_tuples_; }
  uint64_t NumPages() const { return num_pages_; }

  /// Appends a row of boxed values (engine-boundary path: loaders, tests).
  Status AppendRow(const std::vector<Value>& values);

  /// Fast append path: returns a pointer to an uninitialized tuple slot the
  /// caller fills in place (used by the data generators).
  Result<uint8_t*> AppendTupleSlot();

  /// Adopts a fully formed, malloc-aligned page (used by the executor to
  /// turn generated-code result pages into a table without copying).
  /// In-memory tables only.
  Status AdoptPage(Page* page);

  /// Pins every page and returns the pinned page-pointer array, the memory
  /// image the code generator's TableRef points at. When a file-backed
  /// table exceeds the buffer pool, falls back to bypass reads: the
  /// returned pages are query-local copies (PinnedPages frees them), so
  /// beyond-memory scans stream instead of failing on pool exhaustion.
  Result<PinnedPages> Pin();

  /// Invokes `fn(tuple_ptr)` for every tuple (test/oracle convenience).
  /// Decode-aware: on a compressed table the callback sees decoded NSM
  /// tuples (padding bytes zeroed).
  Status ForEachTuple(const std::function<void(const uint8_t*)>& fn);

  /// Re-encodes the table into compressed columnar pages using a codec
  /// chosen from the current statistics (computing them first if stale).
  /// No-op when compression would not raise the page tuple capacity.
  /// Idempotent. Bumps the statistics version, because the page layout a
  /// compiled plan was generated against changes — must not run while
  /// prepared statements over this table are live (the engine compresses
  /// at construction, before any statement exists).
  Status Compress();

  /// Rebuilds plain NSM pages from a compressed table (inverse of
  /// Compress; same stats-version / live-statement caveats). Appending to
  /// a compressed table decompresses it automatically, like dropping an
  /// index on write.
  Status Decompress();

  /// The active compression codec; codec().enabled == false for plain NSM
  /// tables. The planner serializes this into plan signatures.
  const TableCodec& codec() const { return codec_; }

  /// Sorted dictionary blobs for kDict columns (empty vectors elsewhere).
  const std::vector<std::vector<uint8_t>>& dicts() const { return dicts_; }

  /// Tuple capacity of one page under the active layout (codec capacity
  /// when compressed, NSM packing otherwise).
  uint32_t effective_tuples_per_page() const {
    return codec_.enabled ? codec_.tuples_per_cpage : tuples_per_page_;
  }

  /// Null for in-memory tables.
  BufferManager* buffer_manager() const { return buffer_manager_; }

  /// Scans the table and recomputes `stats()`. Bumps the statistics
  /// version: the engine embeds the catalog-wide version in compiled-plan
  /// cache keys, so refreshed statistics invalidate stale libraries.
  Status ComputeStats();
  const TableStats& stats() const { return stats_; }
  TableStats& mutable_stats() {
    // Handing out a mutable reference signals a statistics edit: count it
    // as a refresh so cached plans keyed on the old stats stop matching.
    stats_version_.fetch_add(1, std::memory_order_acq_rel);
    return stats_;
  }

  /// Monotonic statistics refresh counter (see Catalog::StatsVersion).
  uint64_t stats_version() const {
    return stats_version_.load(std::memory_order_acquire);
  }

 private:
  Table(std::string name, Schema schema, BufferManager* bm, FileId file);
  Result<Page*> CurrentWritePage();
  // Gathers every tuple as NSM bytes (decoding if compressed) — the staging
  // buffer for the Compress/Decompress page rewrites.
  Result<std::vector<uint8_t>> GatherTuples();
  // Replaces the table's pages with `pages` built from `flat` under
  // `codec` (codec.enabled == false → NSM rebuild). File-backed tables
  // write a fresh generation file; in-memory tables swap owned_pages_.
  Status RewritePages(const std::vector<uint8_t>& flat,
                      const TableCodec& codec,
                      const std::vector<std::vector<uint8_t>>& dicts);

  std::string name_;
  Schema schema_;
  uint32_t tuples_per_page_;
  uint64_t num_tuples_ = 0;
  uint64_t num_pages_ = 0;

  // In-memory mode.
  std::vector<Page*> owned_pages_;

  // File-backed mode.
  BufferManager* buffer_manager_ = nullptr;
  FileId file_ = 0;
  Page* write_page_ = nullptr;     // pinned tail page
  uint64_t write_page_no_ = 0;
  std::string file_path_;          // base path; rewrites append .g<N>
  uint32_t file_generation_ = 0;

  // Compression state (see storage/compress.h).
  TableCodec codec_;
  std::vector<std::vector<uint8_t>> dicts_;

  TableStats stats_;
  std::atomic<uint64_t> stats_version_{0};
};

}  // namespace hique

#endif  // HIQUE_STORAGE_TABLE_H_

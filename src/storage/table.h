#ifndef HIQUE_STORAGE_TABLE_H_
#define HIQUE_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/compress.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "txn/delta_store.h"
#include "util/status.h"

namespace hique {

/// Per-column statistics gathered by Table::ComputeStats. The optimizer uses
/// them for cardinality estimation and, critically, for choosing map
/// aggregation / fine partitioning (paper §V-B depends on knowing attribute
/// domains).
struct ColumnStats {
  Value min;
  Value max;
  uint64_t distinct = 0;
  bool distinct_exact = false;
  // Compression inputs (int-family columns only): is the column
  // non-decreasing in scan order, and if so what is the largest adjacent
  // step? Drives the delta-encoding choice in ChooseTableCodec.
  bool sorted_asc = false;
  int64_t max_step = 0;
  bool valid = false;
};

struct TableStats {
  uint64_t rows = 0;
  std::vector<ColumnStats> columns;
  bool valid = false;
};

/// All pages of a table pinned in memory for the duration of a query
/// (main-memory execution, paper §VI). Releases pins on destruction.
///
/// For in-memory tables this is a *snapshot*: the page list, the exact
/// tuple count, and the statistics version are captured atomically, and the
/// `hold_` references keep every captured page alive even if a concurrent
/// compaction / Compress / Decompress retires the table's current pages.
class PinnedPages {
 public:
  PinnedPages() = default;
  ~PinnedPages() { Release(); }
  PinnedPages(PinnedPages&& other) noexcept { *this = std::move(other); }
  PinnedPages& operator=(PinnedPages&& other) noexcept;
  PinnedPages(const PinnedPages&) = delete;
  PinnedPages& operator=(const PinnedPages&) = delete;

  const std::vector<Page*>& pages() const { return pages_; }
  /// Exact number of live tuples across pages() at snapshot time.
  uint64_t tuple_count() const { return tuple_count_; }
  /// The table's statistics version at snapshot time.
  uint64_t stats_version() const { return stats_version_; }
  /// The table's physical-layout version at snapshot time (stale-plan
  /// checks: generated code is only invalid if the page *encoding* moved).
  uint64_t layout_version() const { return layout_version_; }
  void Release();

 private:
  friend class Table;
  std::vector<Page*> pages_;
  BufferManager* buffer_manager_ = nullptr;  // null for in-memory tables
  FileId file_ = 0;
  // Bypass mode: the pages are query-local copies (table bigger than the
  // buffer pool) owned by this object and freed on Release.
  bool owns_ = false;
  uint64_t tuple_count_ = 0;
  uint64_t stats_version_ = 0;
  uint64_t layout_version_ = 0;
  // Shared ownership of page generations / delta substitutes backing the
  // snapshot (in-memory tables).
  std::vector<std::shared_ptr<const void>> hold_;
};

/// An NSM table: fixed-length tuples packed into 4096-byte pages. Tables are
/// either memory-resident (the default; malloc'd pages) or file-backed
/// through the BufferManager.
///
/// Write model: bulk loading (AppendTupleSlot / AppendRow / AdoptPage)
/// mutates base pages directly and is NOT safe against concurrent readers.
/// Once EnableWrites() attaches a txn::DeltaStore, the base becomes
/// immutable, AppendRow routes through the delta store, and readers snapshot
/// the merged (base + delta) state via Pin()/ForEachTuple — safe against
/// concurrent DML and compaction.
class Table {
 public:
  /// Creates a memory-resident table.
  Table(std::string name, Schema schema);

  /// Creates a file-backed table whose pages live in `buffer_manager`.
  static Result<std::unique_ptr<Table>> CreateFileBacked(
      std::string name, Schema schema, BufferManager* buffer_manager,
      const std::string& path);

  ~Table();
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint32_t tuple_size() const { return schema_.TupleSize(); }
  uint32_t tuples_per_page() const { return tuples_per_page_; }
  uint64_t NumTuples() const {
    return num_tuples_.load(std::memory_order_acquire);
  }
  uint64_t NumPages() const { return num_pages_; }

  /// Appends a row of boxed values (engine-boundary path: loaders, tests).
  /// With a delta store attached the row lands in the delta (concurrent-
  /// safe); otherwise it goes to the base write page (load-time only).
  Status AppendRow(const std::vector<Value>& values);

  /// Fast append path: returns a pointer to an uninitialized tuple slot the
  /// caller fills in place (used by the data generators). Load-time only —
  /// errors once a delta store is attached, because a raw slot pointer
  /// cannot be published safely against concurrent snapshots.
  Result<uint8_t*> AppendTupleSlot();

  /// Adopts a fully formed, malloc-aligned page (used by the executor to
  /// turn generated-code result pages into a table without copying).
  /// In-memory tables only.
  Status AdoptPage(Page* page);

  /// Pins every page and returns the pinned page-pointer array, the memory
  /// image the code generator's TableRef points at. When a file-backed
  /// table exceeds the buffer pool, falls back to bypass reads: the
  /// returned pages are query-local copies (PinnedPages frees them), so
  /// beyond-memory scans stream instead of failing on pool exhaustion.
  /// For in-memory tables this is a consistent snapshot of the merged
  /// base + delta state (see PinnedPages).
  Result<PinnedPages> Pin();

  /// Invokes `fn(tuple_ptr)` for every tuple (test/oracle convenience).
  /// Decode-aware: on a compressed table the callback sees decoded NSM
  /// tuples (padding bytes zeroed). With a delta store attached the
  /// callback sees the merged live state (inserts included, deletes
  /// filtered) — this is what keeps the reference executor an oracle for
  /// DML tests.
  Status ForEachTuple(const std::function<void(const uint8_t*)>& fn);

  // ---- Write path (src/txn) -----------------------------------------------

  /// Attaches the write-optimized delta store, freezing the base pages.
  /// Idempotent. Decompresses first (a compressed base cannot interleave
  /// with NSM delta pages). In-memory tables only; errors with a typed
  /// Status on file-backed or read-only tables.
  Status EnableWrites();

  /// The attached delta store, or null. Attached implies !codec().enabled.
  /// Caller must hold writer_mutex() (or otherwise exclude compaction,
  /// which swaps the store for an empty one) — use DeltaPages() for a
  /// lock-free-caller threshold probe.
  txn::DeltaStore* delta() const { return delta_.get(); }

  /// Number of sealed delta insert pages, or 0 with no delta attached.
  /// Safe against concurrent DML and compaction (snapshots the store
  /// pointer under the state mutex).
  uint64_t DeltaPages() const {
    std::lock_guard<std::mutex> lk(state_mu_);
    return delta_ != nullptr ? delta_->delta_pages() : 0;
  }

  /// Serializes DML statements and compaction on this table. Hold it across
  /// any enumerate-then-mutate sequence so row ids stay stable.
  std::mutex& writer_mutex() { return writer_mu_; }

  /// Invokes fn(row_id, tuple) for every live row — base pages first (ids
  /// are frozen physical positions), then delta inserts (ids offset by
  /// txn::kDeltaIdBase). Caller must hold writer_mutex(). Requires an
  /// uncompressed in-memory table (EnableWrites establishes that).
  Status ForEachLiveRow(
      const std::function<void(uint64_t, const uint8_t*)>& fn);

  /// Marks the given row ids deleted in the delta store and maintains the
  /// live tuple count. Caller must hold writer_mutex(). Returns the number
  /// of rows that were live.
  Result<uint64_t> DeleteRows(const std::vector<uint64_t>& row_ids);

  /// Folds the delta store into fresh base pages (a new page generation —
  /// in-flight snapshots keep the old one alive), reattaches an empty
  /// delta, recomputes statistics, and optionally re-runs ChooseTableCodec
  /// (`recompress`; detaches the delta when a codec is chosen). Bumps the
  /// statistics version, so cached plans over the old layout invalidate.
  /// No-op when no delta is attached or it is empty.
  Status Compact(bool recompress);

  /// Marks the table read-only: EnableWrites (and therefore all DML)
  /// rejects with a typed Status. System/bench result tables use this.
  void SetReadOnly(bool read_only) { read_only_ = read_only; }
  bool read_only() const { return read_only_; }

  // -------------------------------------------------------------------------

  /// Re-encodes the table into compressed columnar pages using a codec
  /// chosen from the current statistics (computing them first if stale).
  /// No-op when compression would not raise the page tuple capacity.
  /// Idempotent. Bumps the statistics version, because the page layout a
  /// compiled plan was generated against changes; in-flight snapshots stay
  /// valid (old generation) and new plans recompile under the new version.
  /// Requires an empty delta store (Compact folds it first); detaches it.
  Status Compress();

  /// Rebuilds plain NSM pages from a compressed table (inverse of
  /// Compress; same stats-version semantics). Appending to a compressed
  /// table decompresses it automatically, like dropping an index on write.
  Status Decompress();

  /// The active compression codec; codec().enabled == false for plain NSM
  /// tables. The planner serializes this into plan signatures.
  const TableCodec& codec() const { return codec_; }

  /// Sorted dictionary blobs for kDict columns (empty vectors elsewhere).
  const std::vector<std::vector<uint8_t>>& dicts() const { return dicts_; }

  /// Tuple capacity of one page under the active layout (codec capacity
  /// when compressed, NSM packing otherwise).
  uint32_t effective_tuples_per_page() const {
    return codec_.enabled ? codec_.tuples_per_cpage : tuples_per_page_;
  }

  /// Null for in-memory tables.
  BufferManager* buffer_manager() const { return buffer_manager_; }

  /// Scans the table and recomputes `stats()`. Bumps the statistics
  /// version: the engine embeds the catalog-wide version in compiled-plan
  /// cache keys, so refreshed statistics invalidate stale libraries.
  Status ComputeStats();
  /// A copy of the current statistics snapshot. Copy, not reference: the
  /// compactor republishes statistics while concurrent planners read them,
  /// and the lock scope must not leak into the caller.
  TableStats stats() const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
  }
  /// Load-time only (data generators seeding synthetic statistics): the
  /// returned reference is unguarded against concurrent readers.
  TableStats& mutable_stats() {
    // Handing out a mutable reference signals a statistics edit: count it
    // as a refresh so cached plans keyed on the old stats stop matching.
    stats_version_.fetch_add(1, std::memory_order_acq_rel);
    return stats_;
  }

  /// Monotonic statistics refresh counter (see Catalog::StatsVersion).
  uint64_t stats_version() const {
    return stats_version_.load(std::memory_order_acquire);
  }

  /// Monotonic physical-layout counter: bumps only when the page *encoding*
  /// changes (Compress / Decompress / recompressing compaction), never on a
  /// plain NSM compaction or a statistics refresh. Compiled plans capture it
  /// at prepare time and the executor compares it against the pinned
  /// snapshot: generated code stays valid across layout-preserving
  /// compactions, so a compaction storm cannot starve in-flight queries.
  uint64_t layout_version() const {
    return layout_version_.load(std::memory_order_acquire);
  }

 private:
  /// One immutable generation of in-memory base pages. Readers hold a
  /// shared_ptr from Pin(); page-layout rewrites (Compress/Decompress/
  /// Compact) install a fresh generation and the old pages are freed only
  /// when the last snapshot over them drains.
  struct PageGen {
    std::vector<Page*> pages;
    ~PageGen() {
      for (Page* p : pages) std::free(p);
    }
  };

  Table(std::string name, Schema schema, BufferManager* bm, FileId file);
  Result<Page*> CurrentWritePage();
  // Gathers every tuple as NSM bytes (decoding if compressed, merging the
  // delta) — the staging buffer for Compress/Decompress/Compact rewrites.
  Result<std::vector<uint8_t>> GatherTuples();
  // Replaces the table's pages with pages built from `flat` under `codec`
  // (codec.enabled == false → NSM rebuild) and publishes pages + codec +
  // dicts + a stats-version bump atomically. In-memory tables swap the
  // page generation; file-backed tables write a fresh generation file.
  Status RewritePages(const std::vector<uint8_t>& flat,
                      const TableCodec& codec,
                      const std::vector<std::vector<uint8_t>>& dicts);
  static Result<std::vector<Page*>> BuildNsmPages(
      const std::vector<uint8_t>& flat, uint32_t tuple_size, uint32_t cap);

  std::string name_;
  Schema schema_;
  uint32_t tuples_per_page_;
  std::atomic<uint64_t> num_tuples_{0};  // live tuples incl. delta
  uint64_t num_pages_ = 0;               // base pages only

  // In-memory mode: the current base-page generation. state_mu_ guards the
  // generation pointer, codec_/dicts_ swaps, and the stats-version bump
  // that accompanies them, so Pin() captures a consistent snapshot.
  std::shared_ptr<PageGen> gen_ = std::make_shared<PageGen>();
  mutable std::mutex state_mu_;

  // Write path: delta store + statement-level writer serialization.
  std::unique_ptr<txn::DeltaStore> delta_;
  std::mutex writer_mu_;
  std::atomic<bool> read_only_{false};

  // File-backed mode.
  BufferManager* buffer_manager_ = nullptr;
  FileId file_ = 0;
  Page* write_page_ = nullptr;     // pinned tail page
  uint64_t write_page_no_ = 0;
  std::string file_path_;          // base path; rewrites append .g<N>
  uint32_t file_generation_ = 0;

  // Compression state (see storage/compress.h).
  TableCodec codec_;
  std::vector<std::vector<uint8_t>> dicts_;

  TableStats stats_;
  mutable std::mutex stats_mu_;  // guards stats_ (ComputeStats vs planners)
  std::atomic<uint64_t> stats_version_{0};
  std::atomic<uint64_t> layout_version_{0};
};

}  // namespace hique

#endif  // HIQUE_STORAGE_TABLE_H_

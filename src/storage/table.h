#ifndef HIQUE_STORAGE_TABLE_H_
#define HIQUE_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace hique {

/// Per-column statistics gathered by Table::ComputeStats. The optimizer uses
/// them for cardinality estimation and, critically, for choosing map
/// aggregation / fine partitioning (paper §V-B depends on knowing attribute
/// domains).
struct ColumnStats {
  Value min;
  Value max;
  uint64_t distinct = 0;
  bool distinct_exact = false;
  bool valid = false;
};

struct TableStats {
  uint64_t rows = 0;
  std::vector<ColumnStats> columns;
  bool valid = false;
};

/// All pages of a table pinned in memory for the duration of a query
/// (main-memory execution, paper §VI). Releases pins on destruction.
class PinnedPages {
 public:
  PinnedPages() = default;
  ~PinnedPages() { Release(); }
  PinnedPages(PinnedPages&& other) noexcept { *this = std::move(other); }
  PinnedPages& operator=(PinnedPages&& other) noexcept;
  PinnedPages(const PinnedPages&) = delete;
  PinnedPages& operator=(const PinnedPages&) = delete;

  const std::vector<Page*>& pages() const { return pages_; }
  void Release();

 private:
  friend class Table;
  std::vector<Page*> pages_;
  BufferManager* buffer_manager_ = nullptr;  // null for in-memory tables
  FileId file_ = 0;
};

/// An NSM table: fixed-length tuples packed into 4096-byte pages. Tables are
/// either memory-resident (the default; malloc'd pages) or file-backed
/// through the BufferManager.
class Table {
 public:
  /// Creates a memory-resident table.
  Table(std::string name, Schema schema);

  /// Creates a file-backed table whose pages live in `buffer_manager`.
  static Result<std::unique_ptr<Table>> CreateFileBacked(
      std::string name, Schema schema, BufferManager* buffer_manager,
      const std::string& path);

  ~Table();
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint32_t tuple_size() const { return schema_.TupleSize(); }
  uint32_t tuples_per_page() const { return tuples_per_page_; }
  uint64_t NumTuples() const { return num_tuples_; }
  uint64_t NumPages() const { return num_pages_; }

  /// Appends a row of boxed values (engine-boundary path: loaders, tests).
  Status AppendRow(const std::vector<Value>& values);

  /// Fast append path: returns a pointer to an uninitialized tuple slot the
  /// caller fills in place (used by the data generators).
  Result<uint8_t*> AppendTupleSlot();

  /// Adopts a fully formed, malloc-aligned page (used by the executor to
  /// turn generated-code result pages into a table without copying).
  /// In-memory tables only.
  Status AdoptPage(Page* page);

  /// Pins every page and returns the pinned page-pointer array, the memory
  /// image the code generator's TableRef points at.
  Result<PinnedPages> Pin();

  /// Invokes `fn(tuple_ptr)` for every tuple (test/oracle convenience).
  Status ForEachTuple(const std::function<void(const uint8_t*)>& fn);

  /// Scans the table and recomputes `stats()`. Bumps the statistics
  /// version: the engine embeds the catalog-wide version in compiled-plan
  /// cache keys, so refreshed statistics invalidate stale libraries.
  Status ComputeStats();
  const TableStats& stats() const { return stats_; }
  TableStats& mutable_stats() {
    // Handing out a mutable reference signals a statistics edit: count it
    // as a refresh so cached plans keyed on the old stats stop matching.
    stats_version_.fetch_add(1, std::memory_order_acq_rel);
    return stats_;
  }

  /// Monotonic statistics refresh counter (see Catalog::StatsVersion).
  uint64_t stats_version() const {
    return stats_version_.load(std::memory_order_acquire);
  }

 private:
  Table(std::string name, Schema schema, BufferManager* bm, FileId file);
  Result<Page*> CurrentWritePage();

  std::string name_;
  Schema schema_;
  uint32_t tuples_per_page_;
  uint64_t num_tuples_ = 0;
  uint64_t num_pages_ = 0;

  // In-memory mode.
  std::vector<Page*> owned_pages_;

  // File-backed mode.
  BufferManager* buffer_manager_ = nullptr;
  FileId file_ = 0;
  Page* write_page_ = nullptr;     // pinned tail page
  uint64_t write_page_no_ = 0;

  TableStats stats_;
  std::atomic<uint64_t> stats_version_{0};
};

}  // namespace hique

#endif  // HIQUE_STORAGE_TABLE_H_

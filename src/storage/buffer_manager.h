#ifndef HIQUE_STORAGE_BUFFER_MANAGER_H_
#define HIQUE_STORAGE_BUFFER_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace hique {

using FileId = uint32_t;

/// Buffer manager for file-backed tables (paper §IV: LRU replacement,
/// page-granular I/O). Pages are fetched into a fixed pool of frames; pinned
/// frames are never evicted; unpinned frames are recycled in LRU order with
/// dirty write-back.
///
/// Main-memory query execution (the paper's regime) pins a table's pages for
/// the duration of a query; the pool must therefore be sized to the working
/// set, exactly as the paper sizes its machine so the TPC-H data fits in RAM.
///
/// Thread-safe: one mutex guards the frame map, pin counts, LRU list and
/// counters, so concurrent (and intra-query parallel) executions can pin
/// and unpin file-backed tables safely. Page *contents* follow the engine
/// rule that base tables are not mutated during queries.
///
/// Disk I/O never happens under the mutex: a frame doing I/O is marked
/// `io_in_progress` while the lock is dropped for the pread/pwrite and
/// finalized after, so a miss-heavy concurrent workload overlaps its disk
/// reads instead of serializing on the pool lock. Concurrent fetchers of a
/// loading (or writing-back) page wait on a condition variable and retry;
/// frames doing I/O are never chosen as eviction victims.
class BufferManager {
 public:
  explicit BufferManager(size_t frame_capacity);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Opens (or creates) a paged file.
  Result<FileId> OpenFile(const std::string& path, bool create);

  /// Number of pages currently in the file.
  Result<uint64_t> FilePageCount(FileId file);

  /// Appends a zeroed page to the file and returns it pinned.
  Result<Page*> NewPage(FileId file, uint64_t* page_no);

  /// Fetches a page, pinning its frame.
  Result<Page*> FetchPage(FileId file, uint64_t page_no);

  /// Releases one pin; `dirty` marks the frame for write-back.
  void Unpin(FileId file, uint64_t page_no, bool dirty);

  /// Reads a page's current bytes into `out` without occupying a pool
  /// frame (beyond-memory scans: a table larger than the pool streams
  /// through query-local buffers instead of thrashing the LRU). A resident
  /// frame is served by copy and counted as a hit — required for
  /// correctness, since the table's pinned dirty tail page can be newer
  /// than its disk image; a non-resident page is pread directly and counted
  /// as a miss.
  Status ReadPageBypass(FileId file, uint64_t page_no, Page* out);

  /// Writes all dirty frames back to their files.
  Status FlushAll();

  size_t frame_capacity() const { return frames_.size(); }
  uint64_t hit_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return hits_;
  }
  uint64_t miss_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return misses_;
  }
  uint64_t eviction_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return evictions_;
  }

 private:
  struct FrameMeta {
    FileId file = 0;
    uint64_t page_no = 0;
    int pin_count = 0;
    bool dirty = false;
    bool valid = false;
    // The frame's bytes are being read from / written to disk outside the
    // lock. While set, the frame must not be evicted and its mapping must
    // not be trusted — waiters block on io_cv_ and retry their lookup.
    bool io_in_progress = false;
    std::list<size_t>::iterator lru_pos;  // valid iff pin_count == 0 && valid
    bool in_lru = false;
  };
  struct OpenFileState {
    std::string path;
    int fd = -1;
    uint64_t page_count = 0;
  };

  using PageKey = std::pair<FileId, uint64_t>;
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.first) << 40) ^
                                   k.second);
    }
  };

  // All require mu_ held (via `lk`); the first two may drop and reacquire
  // the lock around disk I/O.
  Result<size_t> ClaimVictimFrame(std::unique_lock<std::mutex>& lk);
  Status WriteBackUnlocked(std::unique_lock<std::mutex>& lk,
                           size_t frame_index);
  Result<Page*> PinExisting(size_t frame_index);
  Status FlushAllInternal(std::unique_lock<std::mutex>& lk);

  mutable std::mutex mu_;
  std::condition_variable io_cv_;
  std::vector<Page*> frames_;           // frame storage (aligned heap pages)
  std::vector<FrameMeta> meta_;
  std::list<size_t> lru_;               // front = least recently used
  std::unordered_map<PageKey, size_t, PageKeyHash> page_table_;
  std::vector<OpenFileState> files_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace hique

#endif  // HIQUE_STORAGE_BUFFER_MANAGER_H_

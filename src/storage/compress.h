#ifndef HIQUE_STORAGE_COMPRESS_H_
#define HIQUE_STORAGE_COMPRESS_H_

#include <cstdint>
#include <vector>

#include "storage/page.h"
#include "storage/schema.h"
#include "util/status.h"

namespace hique {

struct ColumnStats;
struct TableStats;

/// Lightweight column compression for table pages (ROADMAP "beyond-memory
/// scale"): a compressed page keeps the [num_tuples][reserved] header (with
/// reserved = kCompressedPageMagic) and stores each column as a contiguous
/// column-major *segment* behind it, in schema order, each segment aligned
/// to 8 bytes. Every encoding parameter is a table-level constant derived
/// deterministically from catalogue statistics by ChooseTableCodec, so the
/// planner can serialize the choice into the plan signature and generated
/// code can bake the segment arithmetic as compile-time constants — the
/// compressor here and the emitted decode kernels must agree on the layout
/// formulas in SegmentBytes below.
///
/// Encoding menu (per column):
///  - kRaw:   width-byte values back to back (doubles, incompressible ints).
///  - kFOR:   frame-of-reference: value - base (base = stats min) bit-packed
///            LSB-first at `bits` = bits(max - min). bits == 0 means the
///            column is a single constant and has no segment at all.
///  - kDelta: sorted int columns: the page's first value raw as int64,
///            then value[i] - value[i-1] bit-packed at `bits` =
///            bits(max adjacent step). Decode is a running prefix sum.
///  - kDict:  CHAR columns with few distinct values: a table-global sorted
///            dictionary blob (distinct values, `length` bytes each) and
///            bit-packed codes (ranks) at `bits` = bits(entries - 1).
enum class ColEncoding : uint8_t { kRaw = 0, kFOR = 1, kDelta = 2, kDict = 3 };

struct ColumnCodec {
  ColEncoding enc = ColEncoding::kRaw;
  uint32_t bits = 0;         // packed width (kFOR/kDelta/kDict); 0 for kRaw
  int64_t base = 0;          // kFOR reference frame; kFOR bits==0 constant
  uint64_t dict_entries = 0; // kDict dictionary cardinality
};

/// The per-table compression descriptor: plan-safe (no data blobs — the
/// dictionary contents live on the Table and cross into generated code at
/// run time through HqTableRef::col_dicts).
struct TableCodec {
  bool enabled = false;
  uint32_t tuples_per_cpage = 0;  // tuple capacity of one compressed page
  std::vector<ColumnCodec> cols;  // one per schema column
};

/// Maximum packed width: hq_unpack_bits reads an unaligned 8-byte window,
/// so shift (< 8) + width must fit in 64 bits.
inline constexpr uint32_t kMaxPackedBits = 56;

/// Dictionary encoding is only considered below this cardinality: the blob
/// stays cache-resident and codes stay narrow.
inline constexpr uint64_t kMaxDictEntries = 1u << 16;

/// Bits needed to represent values in [0, v] (0 for v == 0).
uint32_t BitsForRange(uint64_t v);

/// Bytes of column `c`'s segment in a page holding `nt` tuples, before
/// 8-byte alignment. Generated decode kernels emit this same formula with
/// the codec constants inlined.
uint64_t SegmentBytes(const ColumnCodec& cc, uint32_t width, uint32_t nt);

/// Chooses per-column encodings purely from catalogue statistics (min /
/// max / distinct / sortedness / max adjacent step) — deterministic, host-
/// independent, data read only through `stats`. Returns enabled == false
/// when compression would not raise the page tuple capacity (the honest
/// "is it worth it" criterion: strictly more tuples per page than NSM).
TableCodec ChooseTableCodec(const Schema& schema, const TableStats& stats);

/// Encodes `nt` NSM tuples (`nt <= codec.tuples_per_cpage`, consecutive at
/// schema.TupleSize() stride) into `out`. `dicts[c]` must hold the sorted
/// dictionary blob for every kDict column (as built by Table::Compress).
/// Fails if a value falls outside its codec's domain (stale stats).
Status EncodePage(const TableCodec& codec, const Schema& schema,
                  const uint8_t* tuples, uint32_t nt,
                  const std::vector<std::vector<uint8_t>>& dicts, Page* out);

/// Decodes a compressed page back into NSM tuples appended to `out`
/// (schema.TupleSize() bytes each). Validates the header marker, the tuple
/// count against the codec capacity, and every dictionary code against
/// dict_entries, so hostile or corrupt page bytes fail cleanly instead of
/// reading out of bounds.
Status DecodePage(const TableCodec& codec, const Schema& schema,
                  const Page& page,
                  const std::vector<std::vector<uint8_t>>& dicts,
                  std::vector<uint8_t>* out);

}  // namespace hique

#endif  // HIQUE_STORAGE_COMPRESS_H_

#ifndef HIQUE_STORAGE_CATALOG_H_
#define HIQUE_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace hique {

/// The system catalogue: table name -> Table, plus schema lookup for the
/// binder. Single-threaded by design (each query runs in its own engine
/// instance in the paper's client-server model; concurrency control is an
/// orthogonal aspect the paper explicitly leaves untouched).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a memory-resident table. Fails if the name exists.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Registers an externally constructed table (e.g., file backed).
  Result<Table*> AdoptTable(std::unique_ptr<Table> table);

  Result<Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Catalog-wide statistics version: changes whenever any table's
  /// statistics are recomputed (or a table is created/dropped). The engine
  /// prefixes compiled-plan cache keys with it, so a stats refresh
  /// invalidates stale cached libraries instead of letting them serve until
  /// LRU eviction. Mixes per-table versions with the table-name hash so two
  /// different refresh patterns never collide into the same version.
  uint64_t StatsVersion() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace hique

#endif  // HIQUE_STORAGE_CATALOG_H_

#include "storage/buffer_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/macros.h"

namespace hique {

BufferManager::BufferManager(size_t frame_capacity) {
  HQ_CHECK(frame_capacity > 0);
  frames_.resize(frame_capacity);
  meta_.resize(frame_capacity);
  for (size_t i = 0; i < frame_capacity; ++i) {
    void* mem = nullptr;
    int rc = posix_memalign(&mem, kPageSize, kPageSize);
    HQ_CHECK_MSG(rc == 0 && mem != nullptr, "buffer pool allocation failed");
    // Frame alignment feeds generated SIMD kernels directly (scans read
    // pinned frames in place) — same 64-byte contract as Arena/Table.
    assert((reinterpret_cast<uintptr_t>(mem) & 63u) == 0);
    frames_[i] = static_cast<Page*>(mem);
    frames_[i]->Reset();
    lru_.push_back(i);
    meta_[i].lru_pos = std::prev(lru_.end());
    meta_[i].in_lru = true;
  }
}

BufferManager::~BufferManager() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    (void)FlushAllInternal(lk);
  }
  for (auto& f : files_) {
    if (f.fd >= 0) ::close(f.fd);
  }
  for (Page* p : frames_) std::free(p);
}

Result<FileId> BufferManager::OpenFile(const std::string& path, bool create) {
  int flags = O_RDWR | (create ? O_CREAT : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek " + path);
  }
  OpenFileState state;
  state.path = path;
  state.fd = fd;
  state.page_count = static_cast<uint64_t>(size) / kPageSize;
  std::lock_guard<std::mutex> lk(mu_);
  files_.push_back(state);
  return static_cast<FileId>(files_.size() - 1);
}

Result<uint64_t> BufferManager::FilePageCount(FileId file) {
  std::lock_guard<std::mutex> lk(mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  return files_[file].page_count;
}

Result<size_t> BufferManager::ClaimVictimFrame(
    std::unique_lock<std::mutex>& lk) {
  size_t frame;
  for (;;) {
    if (lru_.empty()) {
      return Status::ExecError(
          "buffer pool exhausted: all frames pinned (pool too small for "
          "working set)");
    }
    frame = lru_.front();
    if (meta_[frame].io_in_progress) {
      // FlushAll is writing this frame's bytes out right now; wait for the
      // I/O to finish rather than stealing the frame mid-write.
      io_cv_.wait(lk);
      continue;
    }
    lru_.pop_front();
    meta_[frame].in_lru = false;
    break;
  }
  if (meta_[frame].valid) {
    // Write-back happens with the lock dropped; the old mapping stays in
    // place (io_in_progress) so fetchers of the old page wait instead of
    // re-reading stale bytes from disk mid-write.
    Status written = WriteBackUnlocked(lk, frame);
    if (!written.ok()) {
      // Return the frame to the cold end and surface the error.
      lru_.push_front(frame);
      meta_[frame].lru_pos = lru_.begin();
      meta_[frame].in_lru = true;
      return written;
    }
    page_table_.erase({meta_[frame].file, meta_[frame].page_no});
    meta_[frame].valid = false;
    ++evictions_;
    // Waiters keyed on the old mapping re-run their lookup and miss.
    io_cv_.notify_all();
  }
  return frame;
}

Status BufferManager::WriteBackUnlocked(std::unique_lock<std::mutex>& lk,
                                        size_t frame_index) {
  FrameMeta& m = meta_[frame_index];
  if (!m.valid || !m.dirty) return Status::OK();
  const int fd = files_[m.file].fd;
  const std::string path = files_[m.file].path;
  const off_t offset = static_cast<off_t>(m.page_no) * kPageSize;
  // Claim the dirty mark *before* dropping the lock: a pin holder that
  // modifies the page and calls Unpin(dirty=true) during our pwrite
  // re-marks the frame, so the newer contents get their own write-back
  // instead of being silently lost to `dirty = false` after the I/O.
  m.dirty = false;
  m.io_in_progress = true;
  lk.unlock();
  ssize_t n = ::pwrite(fd, frames_[frame_index], kPageSize, offset);
  int saved_errno = errno;
  lk.lock();
  m.io_in_progress = false;
  io_cv_.notify_all();
  if (n != kPageSize) {
    m.dirty = true;  // the bytes never reached disk; keep the frame dirty
    return Status::IoError("pwrite " + path + ": " +
                           std::strerror(saved_errno));
  }
  return Status::OK();
}

Result<Page*> BufferManager::PinExisting(size_t frame_index) {
  FrameMeta& m = meta_[frame_index];
  if (m.pin_count == 0 && m.in_lru) {
    lru_.erase(m.lru_pos);
    m.in_lru = false;
  }
  ++m.pin_count;
  return frames_[frame_index];
}

Result<Page*> BufferManager::NewPage(FileId file, uint64_t* page_no) {
  std::unique_lock<std::mutex> lk(mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  // Reserve the page number atomically with the count bump; nobody can
  // fetch it before NewPage returns (the number is unknown until then).
  uint64_t no = files_[file].page_count++;
  HQ_ASSIGN_OR_RETURN(size_t frame, ClaimVictimFrame(lk));
  FrameMeta& m = meta_[frame];
  m.file = file;
  m.page_no = no;
  m.pin_count = 1;
  m.dirty = true;  // header (num_tuples = 0) differs from on-disk zeros only
                   // trivially, but marking dirty keeps the invariant simple.
  m.valid = true;
  m.io_in_progress = true;
  page_table_[{file, no}] = frame;
  const int fd = files_[file].fd;
  const std::string path = files_[file].path;

  // Extend the file eagerly (so FetchPage of this page after eviction
  // works) with the lock dropped: the loading mapping above keeps the
  // frame claimed meanwhile.
  lk.unlock();
  static const char zeros[kPageSize] = {};
  ssize_t n = ::pwrite(fd, zeros, kPageSize, static_cast<off_t>(no) * kPageSize);
  int saved_errno = errno;
  frames_[frame]->Reset();
  lk.lock();

  m.io_in_progress = false;
  io_cv_.notify_all();
  if (n != kPageSize) {
    page_table_.erase({file, no});
    m.valid = false;
    m.pin_count = 0;
    lru_.push_back(frame);
    m.lru_pos = std::prev(lru_.end());
    m.in_lru = true;
    return Status::IoError("extend " + path + ": " +
                           std::strerror(saved_errno));
  }
  if (page_no != nullptr) *page_no = no;
  return frames_[frame];
}

Result<Page*> BufferManager::FetchPage(FileId file, uint64_t page_no) {
  std::unique_lock<std::mutex> lk(mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  for (;;) {
    auto it = page_table_.find({file, page_no});
    if (it != page_table_.end()) {
      FrameMeta& m = meta_[it->second];
      if (m.io_in_progress) {
        // Another thread is loading this page (or writing it back for
        // eviction): wait and re-run the lookup — the frame may have been
        // loaded, or stolen, by the time we wake.
        io_cv_.wait(lk);
        continue;
      }
      ++hits_;
      return PinExisting(it->second);
    }

    ++misses_;
    if (page_no >= files_[file].page_count) {
      return Status::InvalidArgument("page " + std::to_string(page_no) +
                                     " beyond end of " + files_[file].path);
    }
    HQ_ASSIGN_OR_RETURN(size_t frame, ClaimVictimFrame(lk));
    // ClaimVictimFrame may have dropped the lock (dirty write-back): a
    // concurrent fetcher could have loaded our page meanwhile. Re-check
    // before loading it twice into two frames.
    if (page_table_.count({file, page_no}) != 0) {
      lru_.push_back(frame);
      meta_[frame].lru_pos = std::prev(lru_.end());
      meta_[frame].in_lru = true;
      --misses_;  // resolved as a hit on retry
      continue;
    }

    // Install the loading mapping, then read the bytes with the lock
    // dropped; concurrent fetchers of this page wait on io_cv_.
    FrameMeta& m = meta_[frame];
    m.file = file;
    m.page_no = page_no;
    m.pin_count = 1;
    m.dirty = false;
    m.valid = true;
    m.io_in_progress = true;
    page_table_[{file, page_no}] = frame;
    const int fd = files_[file].fd;
    const std::string path = files_[file].path;

    lk.unlock();
    ssize_t n = ::pread(fd, frames_[frame], kPageSize,
                        static_cast<off_t>(page_no) * kPageSize);
    int saved_errno = errno;
    lk.lock();

    m.io_in_progress = false;
    io_cv_.notify_all();
    if (n != kPageSize) {
      // Undo the mapping; waiters retry and re-attempt the load.
      page_table_.erase({file, page_no});
      m.valid = false;
      m.pin_count = 0;
      lru_.push_back(frame);
      m.lru_pos = std::prev(lru_.end());
      m.in_lru = true;
      return Status::IoError("pread " + path + ": " +
                             std::strerror(saved_errno));
    }
    return frames_[frame];
  }
}

Status BufferManager::ReadPageBypass(FileId file, uint64_t page_no,
                                     Page* out) {
  std::unique_lock<std::mutex> lk(mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  for (;;) {
    auto it = page_table_.find({file, page_no});
    if (it == page_table_.end()) break;
    FrameMeta& m = meta_[it->second];
    if (m.io_in_progress) {
      // Mid-load or mid-write-back: wait for settled bytes, then re-look.
      io_cv_.wait(lk);
      continue;
    }
    ++hits_;
    std::memcpy(out, frames_[it->second], kPageSize);
    return Status::OK();
  }
  if (page_no >= files_[file].page_count) {
    return Status::InvalidArgument("page " + std::to_string(page_no) +
                                   " beyond end of " + files_[file].path);
  }
  ++misses_;
  const int fd = files_[file].fd;
  const std::string path = files_[file].path;
  // Read outside the lock. Base tables are not mutated during queries (the
  // engine rule documented above), so a concurrent load of the same page
  // yields the same bytes.
  lk.unlock();
  ssize_t n = ::pread(fd, out, kPageSize, static_cast<off_t>(page_no) * kPageSize);
  if (n != kPageSize) {
    return Status::IoError("pread " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

void BufferManager::Unpin(FileId file, uint64_t page_no, bool dirty) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = page_table_.find({file, page_no});
  HQ_CHECK_MSG(it != page_table_.end(), "unpin of unmapped page");
  FrameMeta& m = meta_[it->second];
  HQ_CHECK_MSG(m.pin_count > 0, "unpin without pin");
  if (dirty) m.dirty = true;
  if (--m.pin_count == 0) {
    lru_.push_back(it->second);
    m.lru_pos = std::prev(lru_.end());
    m.in_lru = true;
  }
}

Status BufferManager::FlushAll() {
  std::unique_lock<std::mutex> lk(mu_);
  return FlushAllInternal(lk);
}

Status BufferManager::FlushAllInternal(std::unique_lock<std::mutex>& lk) {
  for (size_t i = 0; i < meta_.size(); ++i) {
    while (meta_[i].io_in_progress) io_cv_.wait(lk);
    HQ_RETURN_IF_ERROR(WriteBackUnlocked(lk, i));
  }
  return Status::OK();
}

}  // namespace hique

#include "storage/buffer_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/macros.h"

namespace hique {

BufferManager::BufferManager(size_t frame_capacity) {
  HQ_CHECK(frame_capacity > 0);
  frames_.resize(frame_capacity);
  meta_.resize(frame_capacity);
  for (size_t i = 0; i < frame_capacity; ++i) {
    void* mem = nullptr;
    int rc = posix_memalign(&mem, kPageSize, kPageSize);
    HQ_CHECK_MSG(rc == 0 && mem != nullptr, "buffer pool allocation failed");
    frames_[i] = static_cast<Page*>(mem);
    frames_[i]->Reset();
    lru_.push_back(i);
    meta_[i].lru_pos = std::prev(lru_.end());
    meta_[i].in_lru = true;
  }
}

BufferManager::~BufferManager() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    (void)FlushAllLocked();
  }
  for (auto& f : files_) {
    if (f.fd >= 0) ::close(f.fd);
  }
  for (Page* p : frames_) std::free(p);
}

Result<FileId> BufferManager::OpenFile(const std::string& path, bool create) {
  int flags = O_RDWR | (create ? O_CREAT : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek " + path);
  }
  OpenFileState state;
  state.path = path;
  state.fd = fd;
  state.page_count = static_cast<uint64_t>(size) / kPageSize;
  std::lock_guard<std::mutex> lk(mu_);
  files_.push_back(state);
  return static_cast<FileId>(files_.size() - 1);
}

Result<uint64_t> BufferManager::FilePageCount(FileId file) {
  std::lock_guard<std::mutex> lk(mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  return files_[file].page_count;
}

Result<size_t> BufferManager::GetVictimFrame() {
  if (lru_.empty()) {
    return Status::ExecError(
        "buffer pool exhausted: all frames pinned (pool too small for "
        "working set)");
  }
  size_t frame = lru_.front();
  lru_.pop_front();
  meta_[frame].in_lru = false;
  if (meta_[frame].valid) {
    HQ_RETURN_IF_ERROR(WriteBack(frame));
    page_table_.erase({meta_[frame].file, meta_[frame].page_no});
    meta_[frame].valid = false;
    ++evictions_;
  }
  return frame;
}

Status BufferManager::WriteBack(size_t frame_index) {
  FrameMeta& m = meta_[frame_index];
  if (!m.valid || !m.dirty) return Status::OK();
  const OpenFileState& f = files_[m.file];
  ssize_t n = ::pwrite(f.fd, frames_[frame_index], kPageSize,
                       static_cast<off_t>(m.page_no) * kPageSize);
  if (n != kPageSize) {
    return Status::IoError("pwrite " + f.path + ": " + std::strerror(errno));
  }
  m.dirty = false;
  return Status::OK();
}

Result<Page*> BufferManager::PinExisting(size_t frame_index) {
  FrameMeta& m = meta_[frame_index];
  if (m.pin_count == 0 && m.in_lru) {
    lru_.erase(m.lru_pos);
    m.in_lru = false;
  }
  ++m.pin_count;
  return frames_[frame_index];
}

Result<Page*> BufferManager::NewPage(FileId file, uint64_t* page_no) {
  std::lock_guard<std::mutex> lk(mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  OpenFileState& f = files_[file];
  uint64_t no = f.page_count++;
  // Extend the file eagerly so FetchPage of this page after eviction works.
  static const char zeros[kPageSize] = {};
  ssize_t n =
      ::pwrite(f.fd, zeros, kPageSize, static_cast<off_t>(no) * kPageSize);
  if (n != kPageSize) {
    return Status::IoError("extend " + f.path + ": " + std::strerror(errno));
  }
  HQ_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame());
  frames_[frame]->Reset();
  FrameMeta& m = meta_[frame];
  m.file = file;
  m.page_no = no;
  m.pin_count = 1;
  m.dirty = true;  // header (num_tuples = 0) differs from on-disk zeros only
                   // trivially, but marking dirty keeps the invariant simple.
  m.valid = true;
  page_table_[{file, no}] = frame;
  if (page_no != nullptr) *page_no = no;
  return frames_[frame];
}

Result<Page*> BufferManager::FetchPage(FileId file, uint64_t page_no) {
  std::lock_guard<std::mutex> lk(mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  auto it = page_table_.find({file, page_no});
  if (it != page_table_.end()) {
    ++hits_;
    return PinExisting(it->second);
  }
  ++misses_;
  OpenFileState& f = files_[file];
  if (page_no >= f.page_count) {
    return Status::InvalidArgument("page " + std::to_string(page_no) +
                                   " beyond end of " + f.path);
  }
  HQ_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame());
  ssize_t n = ::pread(f.fd, frames_[frame], kPageSize,
                      static_cast<off_t>(page_no) * kPageSize);
  if (n != kPageSize) {
    return Status::IoError("pread " + f.path + ": " + std::strerror(errno));
  }
  FrameMeta& m = meta_[frame];
  m.file = file;
  m.page_no = page_no;
  m.pin_count = 1;
  m.dirty = false;
  m.valid = true;
  page_table_[{file, page_no}] = frame;
  return frames_[frame];
}

void BufferManager::Unpin(FileId file, uint64_t page_no, bool dirty) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = page_table_.find({file, page_no});
  HQ_CHECK_MSG(it != page_table_.end(), "unpin of unmapped page");
  FrameMeta& m = meta_[it->second];
  HQ_CHECK_MSG(m.pin_count > 0, "unpin without pin");
  if (dirty) m.dirty = true;
  if (--m.pin_count == 0) {
    lru_.push_back(it->second);
    m.lru_pos = std::prev(lru_.end());
    m.in_lru = true;
  }
}

Status BufferManager::FlushAll() {
  std::lock_guard<std::mutex> lk(mu_);
  return FlushAllLocked();
}

Status BufferManager::FlushAllLocked() {
  for (size_t i = 0; i < meta_.size(); ++i) {
    HQ_RETURN_IF_ERROR(WriteBack(i));
  }
  return Status::OK();
}

}  // namespace hique

#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <set>
#include <unordered_set>

#include "util/macros.h"

namespace hique {

PinnedPages& PinnedPages::operator=(PinnedPages&& other) noexcept {
  if (this != &other) {
    Release();
    pages_ = std::move(other.pages_);
    buffer_manager_ = other.buffer_manager_;
    file_ = other.file_;
    owns_ = other.owns_;
    tuple_count_ = other.tuple_count_;
    stats_version_ = other.stats_version_;
    layout_version_ = other.layout_version_;
    hold_ = std::move(other.hold_);
    other.pages_.clear();
    other.hold_.clear();
    other.buffer_manager_ = nullptr;
    other.owns_ = false;
    other.tuple_count_ = 0;
  }
  return *this;
}

void PinnedPages::Release() {
  if (owns_) {
    for (Page* p : pages_) std::free(p);
  } else if (buffer_manager_ != nullptr) {
    for (uint64_t i = 0; i < pages_.size(); ++i) {
      buffer_manager_->Unpin(file_, i, /*dirty=*/false);
    }
  }
  pages_.clear();
  hold_.clear();
  buffer_manager_ = nullptr;
  owns_ = false;
  tuple_count_ = 0;
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      tuples_per_page_(Page::TuplesPerPage(schema_.TupleSize())) {
  HQ_CHECK_MSG(schema_.TupleSize() > 0 && tuples_per_page_ > 0,
               "tuple too large for a page");
}

Table::Table(std::string name, Schema schema, BufferManager* bm, FileId file)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      tuples_per_page_(Page::TuplesPerPage(schema_.TupleSize())),
      buffer_manager_(bm),
      file_(file) {}

Result<std::unique_ptr<Table>> Table::CreateFileBacked(
    std::string name, Schema schema, BufferManager* buffer_manager,
    const std::string& path) {
  HQ_CHECK(buffer_manager != nullptr);
  HQ_ASSIGN_OR_RETURN(FileId file, buffer_manager->OpenFile(path, true));
  std::unique_ptr<Table> t(
      new Table(std::move(name), std::move(schema), buffer_manager, file));
  t->file_path_ = path;
  return t;
}

Table::~Table() {
  if (buffer_manager_ != nullptr) {
    if (write_page_ != nullptr) {
      buffer_manager_->Unpin(file_, write_page_no_, /*dirty=*/true);
    }
  }
  // In-memory pages are freed by the last PageGen reference (a draining
  // snapshot may outlive the table's own pointer).
}

Result<Page*> Table::CurrentWritePage() {
  if (buffer_manager_ == nullptr) {
    if (gen_->pages.empty() ||
        gen_->pages.back()->num_tuples >= tuples_per_page_) {
      void* mem = nullptr;
      int rc = posix_memalign(&mem, kPageSize, kPageSize);
      if (rc != 0 || mem == nullptr) {
        return Status::ExecError("out of memory allocating table page");
      }
      Page* p = static_cast<Page*>(mem);
      // Pages are handed to generated SIMD kernels as staged-column input:
      // kPageSize (>= 64) alignment keeps every aligned vector load legal.
      assert((reinterpret_cast<uintptr_t>(p) & 63u) == 0);
      p->Reset();
      std::lock_guard<std::mutex> lk(state_mu_);
      gen_->pages.push_back(p);
      ++num_pages_;
    }
    return gen_->pages.back();
  }
  if (write_page_ == nullptr && num_pages_ > 0) {
    // Re-attach to the tail page (a Decompress rewrite dropped the pinned
    // write page); keep filling it if it is still partial.
    HQ_ASSIGN_OR_RETURN(Page * tail,
                        buffer_manager_->FetchPage(file_, num_pages_ - 1));
    if (tail->num_tuples < tuples_per_page_) {
      write_page_ = tail;
      write_page_no_ = num_pages_ - 1;
      return write_page_;
    }
    buffer_manager_->Unpin(file_, num_pages_ - 1, /*dirty=*/false);
  }
  if (write_page_ == nullptr || write_page_->num_tuples >= tuples_per_page_) {
    if (write_page_ != nullptr) {
      buffer_manager_->Unpin(file_, write_page_no_, /*dirty=*/true);
      write_page_ = nullptr;
    }
    HQ_ASSIGN_OR_RETURN(Page * p,
                        buffer_manager_->NewPage(file_, &write_page_no_));
    write_page_ = p;
    ++num_pages_;
  }
  return write_page_;
}

Result<uint8_t*> Table::AppendTupleSlot() {
  if (delta_ != nullptr) {
    // A raw slot pointer cannot be published safely against concurrent
    // snapshots; the bulk-load fast path is load-time only.
    return Status::InvalidArgument(
        "AppendTupleSlot on write-enabled table " + name_ +
        " (use AppendRow, which routes through the delta store)");
  }
  // Appending to a compressed table rebuilds NSM first (like dropping an
  // index on write): the NSM append path below assumes NSM page layout.
  if (codec_.enabled) HQ_RETURN_IF_ERROR(Decompress());
  HQ_ASSIGN_OR_RETURN(Page * page, CurrentWritePage());
  uint8_t* slot = page->TupleAt(page->num_tuples, schema_.TupleSize());
  ++page->num_tuples;
  num_tuples_.fetch_add(1, std::memory_order_acq_rel);
  stats_.valid = false;
  return slot;
}

Status Table::AdoptPage(Page* page) {
  if (buffer_manager_ != nullptr) {
    return Status::InvalidArgument("AdoptPage requires an in-memory table");
  }
  if (delta_ != nullptr) {
    return Status::InvalidArgument("AdoptPage on write-enabled table " +
                                   name_);
  }
  if (codec_.enabled) HQ_RETURN_IF_ERROR(Decompress());
  if (page->num_tuples > tuples_per_page_) {
    return Status::InvalidArgument("adopted page overflows tuple capacity");
  }
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    gen_->pages.push_back(page);
    ++num_pages_;
  }
  num_tuples_.fetch_add(page->num_tuples, std::memory_order_acq_rel);
  stats_.valid = false;
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.NumColumns()) {
    return Status::InvalidArgument("row arity mismatch for " + name_);
  }
  if (delta_ != nullptr) {
    // Serving mode: serialize into a scratch tuple and hand it to the delta
    // store — safe against concurrent compiled scans and other appenders.
    std::vector<uint8_t> tuple(schema_.TupleSize(), 0);
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i].type_id() != schema_.ColumnAt(i).type.id) {
        return Status::InvalidArgument("type mismatch in column " +
                                       schema_.ColumnAt(i).name);
      }
      schema_.SetValue(tuple.data(), i, values[i]);
    }
    delta_->Insert(tuple.data());
    num_tuples_.fetch_add(1, std::memory_order_acq_rel);
    // Statistics stay as-of-last-compaction by design (concurrent planners
    // read them); the compactor refreshes them when it folds the delta.
    return Status::OK();
  }
  HQ_ASSIGN_OR_RETURN(uint8_t * slot, AppendTupleSlot());
  std::memset(slot, 0, schema_.TupleSize());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].type_id() != schema_.ColumnAt(i).type.id) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_.ColumnAt(i).name);
    }
    schema_.SetValue(slot, i, values[i]);
  }
  return Status::OK();
}

Result<PinnedPages> Table::Pin() {
  PinnedPages pinned;
  if (buffer_manager_ == nullptr) {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (delta_ != nullptr) {
      pinned.pages_.reserve(gen_->pages.size() + delta_->delta_pages());
      pinned.tuple_count_ =
          delta_->SnapshotMerged(gen_->pages, &pinned.pages_, &pinned.hold_);
    } else {
      pinned.pages_ = gen_->pages;
      pinned.tuple_count_ = num_tuples_.load(std::memory_order_acquire);
    }
    pinned.hold_.push_back(gen_);
    pinned.stats_version_ = stats_version_.load(std::memory_order_acquire);
    pinned.layout_version_ = layout_version_.load(std::memory_order_acquire);
    return pinned;
  }
  pinned.tuple_count_ = num_tuples_.load(std::memory_order_acquire);
  pinned.stats_version_ = stats_version_.load(std::memory_order_acquire);
  pinned.layout_version_ = layout_version_.load(std::memory_order_acquire);
  // Flush the tail write page state: it stays pinned by the table itself;
  // pin counts are per-fetch so double pinning is fine.
  if (num_pages_ < buffer_manager_->frame_capacity()) {
    pinned.buffer_manager_ = buffer_manager_;
    pinned.file_ = file_;
    pinned.pages_.reserve(num_pages_);
    bool pool_failed = false;
    Status fetch_err = Status::OK();
    for (uint64_t i = 0; i < num_pages_; ++i) {
      auto page = buffer_manager_->FetchPage(file_, i);
      if (!page.ok()) {
        // Unpin what we already pinned, then fall through to bypass mode
        // (concurrent queries may hold the frames we needed).
        for (uint64_t j = 0; j < pinned.pages_.size(); ++j) {
          buffer_manager_->Unpin(file_, j, false);
        }
        pinned.pages_.clear();
        pinned.buffer_manager_ = nullptr;
        pool_failed = true;
        fetch_err = page.status();
        break;
      }
      pinned.pages_.push_back(page.value());
    }
    if (!pool_failed) return pinned;
    (void)fetch_err;  // bypass below surfaces its own error if disk fails too
  }
  // Bypass mode: the table does not fit the pool pinned all at once.
  // Stream every page into query-local buffers (resident frames are copied,
  // the rest pread) so beyond-memory scans work at any pool size.
  PinnedPages byp;
  byp.owns_ = true;
  byp.tuple_count_ = pinned.tuple_count_;
  byp.stats_version_ = pinned.stats_version_;
  byp.layout_version_ = pinned.layout_version_;
  byp.pages_.reserve(num_pages_);
  for (uint64_t i = 0; i < num_pages_; ++i) {
    void* mem = nullptr;
    int rc = posix_memalign(&mem, kPageSize, kPageSize);
    if (rc != 0 || mem == nullptr) {
      return Status::ExecError("out of memory in bypass table read");
    }
    Page* p = static_cast<Page*>(mem);
    Status read = buffer_manager_->ReadPageBypass(file_, i, p);
    if (!read.ok()) {
      std::free(mem);
      return read;
    }
    byp.pages_.push_back(p);
  }
  return byp;
}

Status Table::ForEachTuple(const std::function<void(const uint8_t*)>& fn) {
  HQ_ASSIGN_OR_RETURN(PinnedPages pinned, Pin());
  const uint32_t tuple_size = schema_.TupleSize();
  if (!codec_.enabled) {
    for (const Page* page : pinned.pages()) {
      for (uint32_t t = 0; t < page->num_tuples; ++t) {
        fn(page->TupleAt(t, tuple_size));
      }
    }
    return Status::OK();
  }
  std::vector<uint8_t> decoded;
  for (const Page* page : pinned.pages()) {
    decoded.clear();
    HQ_RETURN_IF_ERROR(DecodePage(codec_, schema_, *page, dicts_, &decoded));
    for (uint32_t t = 0; t < page->num_tuples; ++t) {
      fn(decoded.data() + static_cast<size_t>(t) * tuple_size);
    }
  }
  return Status::OK();
}

// ---- Write path (src/txn) ---------------------------------------------------

Status Table::EnableWrites() {
  if (buffer_manager_ != nullptr) {
    return Status::NotImplemented("DML requires a memory-resident table (" +
                                  name_ + " is file-backed)");
  }
  if (read_only_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("table " + name_ + " is read-only");
  }
  if (delta_ != nullptr) return Status::OK();
  // A compressed base cannot interleave with NSM delta pages: rebuild NSM
  // first (in-flight snapshots keep the compressed generation alive and the
  // stats-version bump rolls compiled plans over).
  if (codec_.enabled) HQ_RETURN_IF_ERROR(Decompress());
  auto delta =
      std::make_unique<txn::DeltaStore>(schema_.TupleSize(), tuples_per_page_);
  std::lock_guard<std::mutex> lk(state_mu_);
  delta_ = std::move(delta);
  return Status::OK();
}

Status Table::ForEachLiveRow(
    const std::function<void(uint64_t, const uint8_t*)>& fn) {
  if (codec_.enabled) {
    return Status::InvalidArgument("ForEachLiveRow on compressed table " +
                                   name_);
  }
  if (buffer_manager_ != nullptr) {
    return Status::NotImplemented("ForEachLiveRow requires a memory-resident "
                                  "table");
  }
  const uint32_t ts = schema_.TupleSize();
  std::shared_ptr<const txn::DeleteSet> ds =
      delta_ != nullptr ? delta_->delete_set() : nullptr;
  for (uint64_t pi = 0; pi < gen_->pages.size(); ++pi) {
    const Page* page = gen_->pages[pi];
    const uint64_t first = pi * tuples_per_page_;
    for (uint32_t t = 0; t < page->num_tuples; ++t) {
      const uint64_t id = first + t;
      if (ds != nullptr && ds->BaseDeleted(id)) continue;
      fn(id, page->TupleAt(t, ts));
    }
  }
  if (delta_ != nullptr) delta_->ForEachLiveInsert(fn);
  return Status::OK();
}

Result<uint64_t> Table::DeleteRows(const std::vector<uint64_t>& row_ids) {
  if (delta_ == nullptr) {
    return Status::InvalidArgument("writes not enabled on table " + name_);
  }
  const uint64_t n = delta_->Delete(row_ids);
  num_tuples_.fetch_sub(n, std::memory_order_acq_rel);
  // Statistics stay as-of-last-compaction by design (concurrent planners
  // read them); the compactor refreshes them when it folds the delta.
  return n;
}

Status Table::Compact(bool recompress) {
  std::lock_guard<std::mutex> wl(writer_mu_);
  if (buffer_manager_ != nullptr || delta_ == nullptr) return Status::OK();
  if (delta_->inserts() == 0 && delta_->deleted_base() == 0) {
    return Status::OK();
  }
  // Gather the merged live state (snapshot-consistent; DML is excluded by
  // the writer mutex), rebuild fresh NSM base pages, and publish pages +
  // empty delta + stats-version bump as one atomic generation swap.
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> flat, GatherTuples());
  const uint32_t ts = schema_.TupleSize();
  const uint64_t rows = flat.size() / ts;
  auto fresh = std::make_shared<PageGen>();
  HQ_ASSIGN_OR_RETURN(fresh->pages,
                      BuildNsmPages(flat, ts, tuples_per_page_));
  auto delta =
      std::make_unique<txn::DeltaStore>(schema_.TupleSize(), tuples_per_page_);
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    gen_ = std::move(fresh);
    num_pages_ = gen_->pages.size();
    num_tuples_.store(rows, std::memory_order_release);
    delta_ = std::move(delta);
    stats_version_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Fresh statistics for the folded state feed the planner and, when asked,
  // the codec choice below.
  HQ_RETURN_IF_ERROR(ComputeStats());
  if (recompress) HQ_RETURN_IF_ERROR(Compress());
  return Status::OK();
}

// -----------------------------------------------------------------------------

Result<std::vector<uint8_t>> Table::GatherTuples() {
  std::vector<uint8_t> flat;
  const uint32_t ts = schema_.TupleSize();
  flat.reserve(NumTuples() * ts);
  HQ_RETURN_IF_ERROR(ForEachTuple(
      [&](const uint8_t* t) { flat.insert(flat.end(), t, t + ts); }));
  return flat;
}

Result<std::vector<Page*>> Table::BuildNsmPages(
    const std::vector<uint8_t>& flat, uint32_t tuple_size, uint32_t cap) {
  const uint64_t rows = flat.size() / tuple_size;
  const uint64_t new_pages = (rows + cap - 1) / cap;
  std::vector<Page*> fresh;
  fresh.reserve(new_pages);
  auto free_fresh = [&]() {
    for (Page* p : fresh) std::free(p);
  };
  for (uint64_t i = 0; i < new_pages; ++i) {
    void* mem = nullptr;
    int rc = posix_memalign(&mem, kPageSize, kPageSize);
    if (rc != 0 || mem == nullptr) {
      free_fresh();
      return Status::ExecError("out of memory rewriting table pages");
    }
    Page* dst = static_cast<Page*>(mem);
    fresh.push_back(dst);
    const uint64_t first = i * cap;
    const uint32_t nt =
        static_cast<uint32_t>(std::min<uint64_t>(cap, rows - first));
    dst->Reset();
    dst->num_tuples = nt;
    std::memcpy(dst->data, flat.data() + first * tuple_size,
                static_cast<size_t>(nt) * tuple_size);
  }
  return fresh;
}

Status Table::RewritePages(const std::vector<uint8_t>& flat,
                           const TableCodec& codec,
                           const std::vector<std::vector<uint8_t>>& dicts) {
  const uint32_t ts = schema_.TupleSize();
  const uint64_t rows = flat.size() / ts;
  const uint32_t cap = codec.enabled ? codec.tuples_per_cpage : tuples_per_page_;
  HQ_CHECK(cap > 0);
  const uint64_t new_pages = (rows + cap - 1) / cap;

  auto fill = [&](uint64_t page_idx, Page* dst) -> Status {
    const uint64_t first = page_idx * cap;
    const uint32_t nt =
        static_cast<uint32_t>(std::min<uint64_t>(cap, rows - first));
    const uint8_t* src = flat.data() + first * ts;
    if (codec.enabled) {
      return EncodePage(codec, schema_, src, nt, dicts, dst);
    }
    dst->Reset();
    dst->num_tuples = nt;
    std::memcpy(dst->data, src, static_cast<size_t>(nt) * ts);
    return Status::OK();
  };

  if (buffer_manager_ == nullptr) {
    auto fresh = std::make_shared<PageGen>();
    fresh->pages.reserve(new_pages);
    for (uint64_t i = 0; i < new_pages; ++i) {
      void* mem = nullptr;
      int rc = posix_memalign(&mem, kPageSize, kPageSize);
      if (rc != 0 || mem == nullptr) {
        return Status::ExecError("out of memory rewriting table pages");
      }
      fresh->pages.push_back(static_cast<Page*>(mem));
      HQ_RETURN_IF_ERROR(fill(i, fresh->pages.back()));
    }
    // Publish pages + codec + dictionaries + the stats-version bump as one
    // atomic layout change: a concurrent Pin sees either the old layout at
    // the old version or the new layout at the new version, never a mix.
    // The retired generation stays alive until the last snapshot drains.
    std::lock_guard<std::mutex> lk(state_mu_);
    gen_ = std::move(fresh);
    num_pages_ = new_pages;
    codec_ = codec;
    dicts_ = dicts;
    stats_version_.fetch_add(1, std::memory_order_acq_rel);
    // RewritePages only runs for codec transitions (Compress/Decompress),
    // so the encoding a compiled plan reads moved: retire in-flight plans.
    layout_version_.fetch_add(1, std::memory_order_acq_rel);
    return Status::OK();
  }

  // File-backed: write a fresh generation file and swap the table onto it.
  // The old file's cached frames age out of the pool on their own.
  if (write_page_ != nullptr) {
    buffer_manager_->Unpin(file_, write_page_no_, /*dirty=*/true);
    write_page_ = nullptr;
  }
  const std::string path =
      file_path_ + ".g" + std::to_string(++file_generation_);
  HQ_ASSIGN_OR_RETURN(FileId nf, buffer_manager_->OpenFile(path, true));
  for (uint64_t i = 0; i < new_pages; ++i) {
    uint64_t no = 0;
    HQ_ASSIGN_OR_RETURN(Page * dst, buffer_manager_->NewPage(nf, &no));
    Status s = fill(i, dst);
    buffer_manager_->Unpin(nf, no, /*dirty=*/true);
    HQ_RETURN_IF_ERROR(s);
  }
  file_ = nf;
  num_pages_ = new_pages;
  codec_ = codec;
  dicts_ = dicts;
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
  layout_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Table::Compress() {
  if (codec_.enabled) return Status::OK();  // idempotent
  if (NumTuples() == 0) return Status::OK();
  if (delta_ != nullptr &&
      (delta_->inserts() != 0 || delta_->deleted_base() != 0)) {
    return Status::InvalidArgument(
        "Compress with a non-empty delta store on " + name_ +
        " (Compact folds it first)");
  }
  if (!stats().valid) HQ_RETURN_IF_ERROR(ComputeStats());
  TableCodec codec = ChooseTableCodec(schema_, stats());
  if (!codec.enabled) return Status::OK();

  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> flat, GatherTuples());
  const uint32_t ts = schema_.TupleSize();
  const uint64_t rows = NumTuples();

  // Build sorted dictionary blobs for kDict columns; a cardinality mismatch
  // means the statistics were stale — refuse rather than mis-encode.
  std::vector<std::vector<uint8_t>> dicts(schema_.NumColumns());
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    if (codec.cols[c].enc != ColEncoding::kDict) continue;
    const uint32_t len = schema_.ColumnAt(c).type.length;
    const uint32_t off = schema_.OffsetAt(c);
    std::set<std::string> values;
    for (uint64_t i = 0; i < rows; ++i) {
      values.emplace(
          reinterpret_cast<const char*>(flat.data() + i * ts + off), len);
    }
    if (values.size() != codec.cols[c].dict_entries) {
      return Status::ExecError("Compress: dictionary cardinality differs "
                               "from statistics (stale stats)");
    }
    std::vector<uint8_t>& blob = dicts[c];
    blob.reserve(values.size() * len);
    for (const std::string& v : values) {
      blob.insert(blob.end(), v.begin(), v.end());
    }
  }

  // RewritePages publishes pages + codec + the stats-version bump; the
  // (empty) delta store detaches because a compressed base cannot carry
  // one — the next DML statement re-attaches via EnableWrites/Decompress.
  HQ_RETURN_IF_ERROR(RewritePages(flat, codec, dicts));
  if (delta_ != nullptr) {
    std::lock_guard<std::mutex> lk(state_mu_);
    delta_.reset();
  }
  return Status::OK();
}

Status Table::Decompress() {
  if (!codec_.enabled) return Status::OK();
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> flat, GatherTuples());
  HQ_RETURN_IF_ERROR(RewritePages(flat, TableCodec{}, {}));
  return Status::OK();
}

namespace {

// Distinct-count tracking with a cap: beyond the cap the exact count stops
// mattering (map aggregation / fine partitioning are already ruled out).
constexpr size_t kDistinctCap = 1u << 22;

struct DistinctCounter {
  std::unordered_set<uint64_t> scalars;
  std::set<std::string> strings;
  bool overflowed = false;

  void AddScalar(uint64_t bits) {
    if (overflowed) return;
    scalars.insert(bits);
    if (scalars.size() > kDistinctCap) overflowed = true;
  }
  void AddString(const char* p, size_t n) {
    if (overflowed) return;
    strings.emplace(p, n);
    if (strings.size() > kDistinctCap) overflowed = true;
  }
  uint64_t Count() const { return scalars.size() + strings.size(); }
};

}  // namespace

Status Table::ComputeStats() {
  // Build into a local snapshot and publish it whole under stats_mu_ at the
  // end: the compactor recomputes statistics while concurrent planners read
  // them, and a half-updated TableStats must never be observable.
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
  TableStats fresh;
  fresh.rows = NumTuples();
  fresh.columns.assign(schema_.NumColumns(), ColumnStats{});
  std::vector<DistinctCounter> counters(schema_.NumColumns());
  // Scan-order sortedness / max adjacent step (delta-encoding inputs).
  std::vector<int64_t> prev(schema_.NumColumns(), 0);
  std::vector<int64_t> max_step(schema_.NumColumns(), 0);
  std::vector<uint8_t> has_prev(schema_.NumColumns(), 0);
  std::vector<uint8_t> sorted(schema_.NumColumns(), 1);

  uint64_t seen = 0;
  HQ_RETURN_IF_ERROR(ForEachTuple([&](const uint8_t* tuple) {
    ++seen;
    for (size_t c = 0; c < schema_.NumColumns(); ++c) {
      const Column& col = schema_.ColumnAt(c);
      const uint8_t* p = tuple + schema_.OffsetAt(c);
      ColumnStats& cs = fresh.columns[c];
      switch (col.type.id) {
        case TypeId::kInt32:
        case TypeId::kDate:
        case TypeId::kInt64:
        case TypeId::kDouble: {
          Value v = schema_.GetValue(tuple, c);
          if (!cs.valid) {
            cs.min = v;
            cs.max = v;
            cs.valid = true;
          } else {
            if (v.Compare(cs.min) < 0) cs.min = v;
            if (v.Compare(cs.max) > 0) cs.max = v;
          }
          uint64_t bits = 0;
          std::memcpy(&bits, p, col.type.ByteSize());
          counters[c].AddScalar(bits);
          if (col.type.id != TypeId::kDouble) {
            const int64_t iv = v.AsInt64();
            if (has_prev[c] != 0) {
              if (iv < prev[c]) {
                sorted[c] = 0;
              } else {
                max_step[c] = std::max(max_step[c], iv - prev[c]);
              }
            }
            prev[c] = iv;
            has_prev[c] = 1;
          }
          break;
        }
        case TypeId::kChar: {
          Value v = schema_.GetValue(tuple, c);
          if (!cs.valid) {
            cs.min = v;
            cs.max = v;
            cs.valid = true;
          } else {
            if (v.Compare(cs.min) < 0) cs.min = v;
            if (v.Compare(cs.max) > 0) cs.max = v;
          }
          counters[c].AddString(reinterpret_cast<const char*>(p),
                                col.type.length);
          break;
        }
      }
    }
  }));
  // Statistics describe the scanned snapshot, not whatever NumTuples says
  // by the time the scan finishes (DML may have run in between).
  fresh.rows = seen;

  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    ColumnStats& cs = fresh.columns[c];
    if (counters[c].overflowed) {
      cs.distinct = seen;
      cs.distinct_exact = false;
    } else {
      cs.distinct = counters[c].Count();
      cs.distinct_exact = true;
    }
    const TypeId id = schema_.ColumnAt(c).type.id;
    const bool int_family =
        id == TypeId::kInt32 || id == TypeId::kInt64 || id == TypeId::kDate;
    cs.sorted_asc = int_family && has_prev[c] != 0 && sorted[c] != 0;
    cs.max_step = cs.sorted_asc ? max_step[c] : 0;
  }
  fresh.valid = true;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_ = std::move(fresh);
  }
  return Status::OK();
}

}  // namespace hique

#include "storage/table.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <set>
#include <unordered_set>

#include "util/macros.h"

namespace hique {

PinnedPages& PinnedPages::operator=(PinnedPages&& other) noexcept {
  if (this != &other) {
    Release();
    pages_ = std::move(other.pages_);
    buffer_manager_ = other.buffer_manager_;
    file_ = other.file_;
    other.pages_.clear();
    other.buffer_manager_ = nullptr;
  }
  return *this;
}

void PinnedPages::Release() {
  if (buffer_manager_ != nullptr) {
    for (uint64_t i = 0; i < pages_.size(); ++i) {
      buffer_manager_->Unpin(file_, i, /*dirty=*/false);
    }
  }
  pages_.clear();
  buffer_manager_ = nullptr;
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      tuples_per_page_(Page::TuplesPerPage(schema_.TupleSize())) {
  HQ_CHECK_MSG(schema_.TupleSize() > 0 && tuples_per_page_ > 0,
               "tuple too large for a page");
}

Table::Table(std::string name, Schema schema, BufferManager* bm, FileId file)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      tuples_per_page_(Page::TuplesPerPage(schema_.TupleSize())),
      buffer_manager_(bm),
      file_(file) {}

Result<std::unique_ptr<Table>> Table::CreateFileBacked(
    std::string name, Schema schema, BufferManager* buffer_manager,
    const std::string& path) {
  HQ_CHECK(buffer_manager != nullptr);
  HQ_ASSIGN_OR_RETURN(FileId file, buffer_manager->OpenFile(path, true));
  return std::unique_ptr<Table>(
      new Table(std::move(name), std::move(schema), buffer_manager, file));
}

Table::~Table() {
  if (buffer_manager_ != nullptr) {
    if (write_page_ != nullptr) {
      buffer_manager_->Unpin(file_, write_page_no_, /*dirty=*/true);
    }
  } else {
    for (Page* p : owned_pages_) std::free(p);
  }
}

Result<Page*> Table::CurrentWritePage() {
  if (buffer_manager_ == nullptr) {
    if (owned_pages_.empty() ||
        owned_pages_.back()->num_tuples >= tuples_per_page_) {
      void* mem = nullptr;
      int rc = posix_memalign(&mem, kPageSize, kPageSize);
      if (rc != 0 || mem == nullptr) {
        return Status::ExecError("out of memory allocating table page");
      }
      Page* p = static_cast<Page*>(mem);
      // Pages are handed to generated SIMD kernels as staged-column input:
      // kPageSize (>= 64) alignment keeps every aligned vector load legal.
      assert((reinterpret_cast<uintptr_t>(p) & 63u) == 0);
      p->Reset();
      owned_pages_.push_back(p);
      ++num_pages_;
    }
    return owned_pages_.back();
  }
  if (write_page_ == nullptr || write_page_->num_tuples >= tuples_per_page_) {
    if (write_page_ != nullptr) {
      buffer_manager_->Unpin(file_, write_page_no_, /*dirty=*/true);
      write_page_ = nullptr;
    }
    HQ_ASSIGN_OR_RETURN(Page * p,
                        buffer_manager_->NewPage(file_, &write_page_no_));
    write_page_ = p;
    ++num_pages_;
  }
  return write_page_;
}

Result<uint8_t*> Table::AppendTupleSlot() {
  HQ_ASSIGN_OR_RETURN(Page * page, CurrentWritePage());
  uint8_t* slot = page->TupleAt(page->num_tuples, schema_.TupleSize());
  ++page->num_tuples;
  ++num_tuples_;
  stats_.valid = false;
  return slot;
}

Status Table::AdoptPage(Page* page) {
  if (buffer_manager_ != nullptr) {
    return Status::InvalidArgument("AdoptPage requires an in-memory table");
  }
  if (page->num_tuples > tuples_per_page_) {
    return Status::InvalidArgument("adopted page overflows tuple capacity");
  }
  owned_pages_.push_back(page);
  ++num_pages_;
  num_tuples_ += page->num_tuples;
  stats_.valid = false;
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.NumColumns()) {
    return Status::InvalidArgument("row arity mismatch for " + name_);
  }
  HQ_ASSIGN_OR_RETURN(uint8_t * slot, AppendTupleSlot());
  std::memset(slot, 0, schema_.TupleSize());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].type_id() != schema_.ColumnAt(i).type.id) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_.ColumnAt(i).name);
    }
    schema_.SetValue(slot, i, values[i]);
  }
  return Status::OK();
}

Result<PinnedPages> Table::Pin() {
  PinnedPages pinned;
  if (buffer_manager_ == nullptr) {
    pinned.pages_ = owned_pages_;
    return pinned;
  }
  // Flush the tail write page state: it stays pinned by the table itself;
  // pin counts are per-fetch so double pinning is fine.
  pinned.buffer_manager_ = buffer_manager_;
  pinned.file_ = file_;
  pinned.pages_.reserve(num_pages_);
  for (uint64_t i = 0; i < num_pages_; ++i) {
    auto page = buffer_manager_->FetchPage(file_, i);
    if (!page.ok()) {
      // Unpin what we already pinned before propagating.
      for (uint64_t j = 0; j < pinned.pages_.size(); ++j) {
        buffer_manager_->Unpin(file_, j, false);
      }
      pinned.buffer_manager_ = nullptr;
      return page.status();
    }
    pinned.pages_.push_back(page.value());
  }
  return pinned;
}

Status Table::ForEachTuple(const std::function<void(const uint8_t*)>& fn) {
  HQ_ASSIGN_OR_RETURN(PinnedPages pinned, Pin());
  const uint32_t tuple_size = schema_.TupleSize();
  for (const Page* page : pinned.pages()) {
    for (uint32_t t = 0; t < page->num_tuples; ++t) {
      fn(page->TupleAt(t, tuple_size));
    }
  }
  return Status::OK();
}

namespace {

// Distinct-count tracking with a cap: beyond the cap the exact count stops
// mattering (map aggregation / fine partitioning are already ruled out).
constexpr size_t kDistinctCap = 1u << 22;

struct DistinctCounter {
  std::unordered_set<uint64_t> scalars;
  std::set<std::string> strings;
  bool overflowed = false;

  void AddScalar(uint64_t bits) {
    if (overflowed) return;
    scalars.insert(bits);
    if (scalars.size() > kDistinctCap) overflowed = true;
  }
  void AddString(const char* p, size_t n) {
    if (overflowed) return;
    strings.emplace(p, n);
    if (strings.size() > kDistinctCap) overflowed = true;
  }
  uint64_t Count() const { return scalars.size() + strings.size(); }
};

}  // namespace

Status Table::ComputeStats() {
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
  stats_.rows = num_tuples_;
  stats_.columns.assign(schema_.NumColumns(), ColumnStats{});
  std::vector<DistinctCounter> counters(schema_.NumColumns());

  HQ_RETURN_IF_ERROR(ForEachTuple([&](const uint8_t* tuple) {
    for (size_t c = 0; c < schema_.NumColumns(); ++c) {
      const Column& col = schema_.ColumnAt(c);
      const uint8_t* p = tuple + schema_.OffsetAt(c);
      ColumnStats& cs = stats_.columns[c];
      switch (col.type.id) {
        case TypeId::kInt32:
        case TypeId::kDate:
        case TypeId::kInt64:
        case TypeId::kDouble: {
          Value v = schema_.GetValue(tuple, c);
          if (!cs.valid) {
            cs.min = v;
            cs.max = v;
            cs.valid = true;
          } else {
            if (v.Compare(cs.min) < 0) cs.min = v;
            if (v.Compare(cs.max) > 0) cs.max = v;
          }
          uint64_t bits = 0;
          std::memcpy(&bits, p, col.type.ByteSize());
          counters[c].AddScalar(bits);
          break;
        }
        case TypeId::kChar: {
          Value v = schema_.GetValue(tuple, c);
          if (!cs.valid) {
            cs.min = v;
            cs.max = v;
            cs.valid = true;
          } else {
            if (v.Compare(cs.min) < 0) cs.min = v;
            if (v.Compare(cs.max) > 0) cs.max = v;
          }
          counters[c].AddString(reinterpret_cast<const char*>(p),
                                col.type.length);
          break;
        }
      }
    }
  }));

  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    ColumnStats& cs = stats_.columns[c];
    if (counters[c].overflowed) {
      cs.distinct = num_tuples_;
      cs.distinct_exact = false;
    } else {
      cs.distinct = counters[c].Count();
      cs.distinct_exact = true;
    }
  }
  stats_.valid = true;
  return Status::OK();
}

}  // namespace hique

#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <set>
#include <unordered_set>

#include "util/macros.h"

namespace hique {

PinnedPages& PinnedPages::operator=(PinnedPages&& other) noexcept {
  if (this != &other) {
    Release();
    pages_ = std::move(other.pages_);
    buffer_manager_ = other.buffer_manager_;
    file_ = other.file_;
    owns_ = other.owns_;
    other.pages_.clear();
    other.buffer_manager_ = nullptr;
    other.owns_ = false;
  }
  return *this;
}

void PinnedPages::Release() {
  if (owns_) {
    for (Page* p : pages_) std::free(p);
  } else if (buffer_manager_ != nullptr) {
    for (uint64_t i = 0; i < pages_.size(); ++i) {
      buffer_manager_->Unpin(file_, i, /*dirty=*/false);
    }
  }
  pages_.clear();
  buffer_manager_ = nullptr;
  owns_ = false;
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      tuples_per_page_(Page::TuplesPerPage(schema_.TupleSize())) {
  HQ_CHECK_MSG(schema_.TupleSize() > 0 && tuples_per_page_ > 0,
               "tuple too large for a page");
}

Table::Table(std::string name, Schema schema, BufferManager* bm, FileId file)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      tuples_per_page_(Page::TuplesPerPage(schema_.TupleSize())),
      buffer_manager_(bm),
      file_(file) {}

Result<std::unique_ptr<Table>> Table::CreateFileBacked(
    std::string name, Schema schema, BufferManager* buffer_manager,
    const std::string& path) {
  HQ_CHECK(buffer_manager != nullptr);
  HQ_ASSIGN_OR_RETURN(FileId file, buffer_manager->OpenFile(path, true));
  std::unique_ptr<Table> t(
      new Table(std::move(name), std::move(schema), buffer_manager, file));
  t->file_path_ = path;
  return t;
}

Table::~Table() {
  if (buffer_manager_ != nullptr) {
    if (write_page_ != nullptr) {
      buffer_manager_->Unpin(file_, write_page_no_, /*dirty=*/true);
    }
  } else {
    for (Page* p : owned_pages_) std::free(p);
  }
}

Result<Page*> Table::CurrentWritePage() {
  if (buffer_manager_ == nullptr) {
    if (owned_pages_.empty() ||
        owned_pages_.back()->num_tuples >= tuples_per_page_) {
      void* mem = nullptr;
      int rc = posix_memalign(&mem, kPageSize, kPageSize);
      if (rc != 0 || mem == nullptr) {
        return Status::ExecError("out of memory allocating table page");
      }
      Page* p = static_cast<Page*>(mem);
      // Pages are handed to generated SIMD kernels as staged-column input:
      // kPageSize (>= 64) alignment keeps every aligned vector load legal.
      assert((reinterpret_cast<uintptr_t>(p) & 63u) == 0);
      p->Reset();
      owned_pages_.push_back(p);
      ++num_pages_;
    }
    return owned_pages_.back();
  }
  if (write_page_ == nullptr && num_pages_ > 0) {
    // Re-attach to the tail page (a Decompress rewrite dropped the pinned
    // write page); keep filling it if it is still partial.
    HQ_ASSIGN_OR_RETURN(Page * tail,
                        buffer_manager_->FetchPage(file_, num_pages_ - 1));
    if (tail->num_tuples < tuples_per_page_) {
      write_page_ = tail;
      write_page_no_ = num_pages_ - 1;
      return write_page_;
    }
    buffer_manager_->Unpin(file_, num_pages_ - 1, /*dirty=*/false);
  }
  if (write_page_ == nullptr || write_page_->num_tuples >= tuples_per_page_) {
    if (write_page_ != nullptr) {
      buffer_manager_->Unpin(file_, write_page_no_, /*dirty=*/true);
      write_page_ = nullptr;
    }
    HQ_ASSIGN_OR_RETURN(Page * p,
                        buffer_manager_->NewPage(file_, &write_page_no_));
    write_page_ = p;
    ++num_pages_;
  }
  return write_page_;
}

Result<uint8_t*> Table::AppendTupleSlot() {
  // Appending to a compressed table rebuilds NSM first (like dropping an
  // index on write): the NSM append path below assumes NSM page layout.
  if (codec_.enabled) HQ_RETURN_IF_ERROR(Decompress());
  HQ_ASSIGN_OR_RETURN(Page * page, CurrentWritePage());
  uint8_t* slot = page->TupleAt(page->num_tuples, schema_.TupleSize());
  ++page->num_tuples;
  ++num_tuples_;
  stats_.valid = false;
  return slot;
}

Status Table::AdoptPage(Page* page) {
  if (buffer_manager_ != nullptr) {
    return Status::InvalidArgument("AdoptPage requires an in-memory table");
  }
  if (codec_.enabled) HQ_RETURN_IF_ERROR(Decompress());
  if (page->num_tuples > tuples_per_page_) {
    return Status::InvalidArgument("adopted page overflows tuple capacity");
  }
  owned_pages_.push_back(page);
  ++num_pages_;
  num_tuples_ += page->num_tuples;
  stats_.valid = false;
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.NumColumns()) {
    return Status::InvalidArgument("row arity mismatch for " + name_);
  }
  HQ_ASSIGN_OR_RETURN(uint8_t * slot, AppendTupleSlot());
  std::memset(slot, 0, schema_.TupleSize());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].type_id() != schema_.ColumnAt(i).type.id) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_.ColumnAt(i).name);
    }
    schema_.SetValue(slot, i, values[i]);
  }
  return Status::OK();
}

Result<PinnedPages> Table::Pin() {
  PinnedPages pinned;
  if (buffer_manager_ == nullptr) {
    pinned.pages_ = owned_pages_;
    return pinned;
  }
  // Flush the tail write page state: it stays pinned by the table itself;
  // pin counts are per-fetch so double pinning is fine.
  if (num_pages_ < buffer_manager_->frame_capacity()) {
    pinned.buffer_manager_ = buffer_manager_;
    pinned.file_ = file_;
    pinned.pages_.reserve(num_pages_);
    bool pool_failed = false;
    Status fetch_err = Status::OK();
    for (uint64_t i = 0; i < num_pages_; ++i) {
      auto page = buffer_manager_->FetchPage(file_, i);
      if (!page.ok()) {
        // Unpin what we already pinned, then fall through to bypass mode
        // (concurrent queries may hold the frames we needed).
        for (uint64_t j = 0; j < pinned.pages_.size(); ++j) {
          buffer_manager_->Unpin(file_, j, false);
        }
        pinned.pages_.clear();
        pinned.buffer_manager_ = nullptr;
        pool_failed = true;
        fetch_err = page.status();
        break;
      }
      pinned.pages_.push_back(page.value());
    }
    if (!pool_failed) return pinned;
    (void)fetch_err;  // bypass below surfaces its own error if disk fails too
  }
  // Bypass mode: the table does not fit the pool pinned all at once.
  // Stream every page into query-local buffers (resident frames are copied,
  // the rest pread) so beyond-memory scans work at any pool size.
  PinnedPages byp;
  byp.owns_ = true;
  byp.pages_.reserve(num_pages_);
  for (uint64_t i = 0; i < num_pages_; ++i) {
    void* mem = nullptr;
    int rc = posix_memalign(&mem, kPageSize, kPageSize);
    if (rc != 0 || mem == nullptr) {
      return Status::ExecError("out of memory in bypass table read");
    }
    Page* p = static_cast<Page*>(mem);
    Status read = buffer_manager_->ReadPageBypass(file_, i, p);
    if (!read.ok()) {
      std::free(mem);
      return read;
    }
    byp.pages_.push_back(p);
  }
  return byp;
}

Status Table::ForEachTuple(const std::function<void(const uint8_t*)>& fn) {
  HQ_ASSIGN_OR_RETURN(PinnedPages pinned, Pin());
  const uint32_t tuple_size = schema_.TupleSize();
  if (!codec_.enabled) {
    for (const Page* page : pinned.pages()) {
      for (uint32_t t = 0; t < page->num_tuples; ++t) {
        fn(page->TupleAt(t, tuple_size));
      }
    }
    return Status::OK();
  }
  std::vector<uint8_t> decoded;
  for (const Page* page : pinned.pages()) {
    decoded.clear();
    HQ_RETURN_IF_ERROR(DecodePage(codec_, schema_, *page, dicts_, &decoded));
    for (uint32_t t = 0; t < page->num_tuples; ++t) {
      fn(decoded.data() + static_cast<size_t>(t) * tuple_size);
    }
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> Table::GatherTuples() {
  std::vector<uint8_t> flat;
  const uint32_t ts = schema_.TupleSize();
  flat.reserve(num_tuples_ * ts);
  HQ_RETURN_IF_ERROR(ForEachTuple(
      [&](const uint8_t* t) { flat.insert(flat.end(), t, t + ts); }));
  return flat;
}

Status Table::RewritePages(const std::vector<uint8_t>& flat,
                           const TableCodec& codec,
                           const std::vector<std::vector<uint8_t>>& dicts) {
  const uint32_t ts = schema_.TupleSize();
  const uint64_t rows = flat.size() / ts;
  const uint32_t cap = codec.enabled ? codec.tuples_per_cpage : tuples_per_page_;
  HQ_CHECK(cap > 0);
  const uint64_t new_pages = (rows + cap - 1) / cap;

  auto fill = [&](uint64_t page_idx, Page* dst) -> Status {
    const uint64_t first = page_idx * cap;
    const uint32_t nt =
        static_cast<uint32_t>(std::min<uint64_t>(cap, rows - first));
    const uint8_t* src = flat.data() + first * ts;
    if (codec.enabled) {
      return EncodePage(codec, schema_, src, nt, dicts, dst);
    }
    dst->Reset();
    dst->num_tuples = nt;
    std::memcpy(dst->data, src, static_cast<size_t>(nt) * ts);
    return Status::OK();
  };

  if (buffer_manager_ == nullptr) {
    std::vector<Page*> fresh;
    fresh.reserve(new_pages);
    auto free_fresh = [&]() {
      for (Page* p : fresh) std::free(p);
    };
    for (uint64_t i = 0; i < new_pages; ++i) {
      void* mem = nullptr;
      int rc = posix_memalign(&mem, kPageSize, kPageSize);
      if (rc != 0 || mem == nullptr) {
        free_fresh();
        return Status::ExecError("out of memory rewriting table pages");
      }
      fresh.push_back(static_cast<Page*>(mem));
      Status s = fill(i, fresh.back());
      if (!s.ok()) {
        free_fresh();
        return s;
      }
    }
    for (Page* p : owned_pages_) std::free(p);
    owned_pages_ = std::move(fresh);
    num_pages_ = new_pages;
    return Status::OK();
  }

  // File-backed: write a fresh generation file and swap the table onto it.
  // The old file's cached frames age out of the pool on their own.
  if (write_page_ != nullptr) {
    buffer_manager_->Unpin(file_, write_page_no_, /*dirty=*/true);
    write_page_ = nullptr;
  }
  const std::string path =
      file_path_ + ".g" + std::to_string(++file_generation_);
  HQ_ASSIGN_OR_RETURN(FileId nf, buffer_manager_->OpenFile(path, true));
  for (uint64_t i = 0; i < new_pages; ++i) {
    uint64_t no = 0;
    HQ_ASSIGN_OR_RETURN(Page * dst, buffer_manager_->NewPage(nf, &no));
    Status s = fill(i, dst);
    buffer_manager_->Unpin(nf, no, /*dirty=*/true);
    HQ_RETURN_IF_ERROR(s);
  }
  file_ = nf;
  num_pages_ = new_pages;
  return Status::OK();
}

Status Table::Compress() {
  if (codec_.enabled) return Status::OK();  // idempotent
  if (num_tuples_ == 0) return Status::OK();
  if (!stats_.valid) HQ_RETURN_IF_ERROR(ComputeStats());
  TableCodec codec = ChooseTableCodec(schema_, stats_);
  if (!codec.enabled) return Status::OK();

  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> flat, GatherTuples());
  const uint32_t ts = schema_.TupleSize();

  // Build sorted dictionary blobs for kDict columns; a cardinality mismatch
  // means the statistics were stale — refuse rather than mis-encode.
  std::vector<std::vector<uint8_t>> dicts(schema_.NumColumns());
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    if (codec.cols[c].enc != ColEncoding::kDict) continue;
    const uint32_t len = schema_.ColumnAt(c).type.length;
    const uint32_t off = schema_.OffsetAt(c);
    std::set<std::string> values;
    for (uint64_t i = 0; i < num_tuples_; ++i) {
      values.emplace(
          reinterpret_cast<const char*>(flat.data() + i * ts + off), len);
    }
    if (values.size() != codec.cols[c].dict_entries) {
      return Status::ExecError("Compress: dictionary cardinality differs "
                               "from statistics (stale stats)");
    }
    std::vector<uint8_t>& blob = dicts[c];
    blob.reserve(values.size() * len);
    for (const std::string& v : values) {
      blob.insert(blob.end(), v.begin(), v.end());
    }
  }

  HQ_RETURN_IF_ERROR(RewritePages(flat, codec, dicts));
  codec_ = std::move(codec);
  dicts_ = std::move(dicts);
  // The physical layout compiled plans were generated against changed;
  // bump the version so plan-cache keys roll over.
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status Table::Decompress() {
  if (!codec_.enabled) return Status::OK();
  HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> flat, GatherTuples());
  HQ_RETURN_IF_ERROR(RewritePages(flat, TableCodec{}, {}));
  codec_ = TableCodec{};
  dicts_.clear();
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

namespace {

// Distinct-count tracking with a cap: beyond the cap the exact count stops
// mattering (map aggregation / fine partitioning are already ruled out).
constexpr size_t kDistinctCap = 1u << 22;

struct DistinctCounter {
  std::unordered_set<uint64_t> scalars;
  std::set<std::string> strings;
  bool overflowed = false;

  void AddScalar(uint64_t bits) {
    if (overflowed) return;
    scalars.insert(bits);
    if (scalars.size() > kDistinctCap) overflowed = true;
  }
  void AddString(const char* p, size_t n) {
    if (overflowed) return;
    strings.emplace(p, n);
    if (strings.size() > kDistinctCap) overflowed = true;
  }
  uint64_t Count() const { return scalars.size() + strings.size(); }
};

}  // namespace

Status Table::ComputeStats() {
  stats_version_.fetch_add(1, std::memory_order_acq_rel);
  stats_.rows = num_tuples_;
  stats_.columns.assign(schema_.NumColumns(), ColumnStats{});
  std::vector<DistinctCounter> counters(schema_.NumColumns());
  // Scan-order sortedness / max adjacent step (delta-encoding inputs).
  std::vector<int64_t> prev(schema_.NumColumns(), 0);
  std::vector<int64_t> max_step(schema_.NumColumns(), 0);
  std::vector<uint8_t> has_prev(schema_.NumColumns(), 0);
  std::vector<uint8_t> sorted(schema_.NumColumns(), 1);

  HQ_RETURN_IF_ERROR(ForEachTuple([&](const uint8_t* tuple) {
    for (size_t c = 0; c < schema_.NumColumns(); ++c) {
      const Column& col = schema_.ColumnAt(c);
      const uint8_t* p = tuple + schema_.OffsetAt(c);
      ColumnStats& cs = stats_.columns[c];
      switch (col.type.id) {
        case TypeId::kInt32:
        case TypeId::kDate:
        case TypeId::kInt64:
        case TypeId::kDouble: {
          Value v = schema_.GetValue(tuple, c);
          if (!cs.valid) {
            cs.min = v;
            cs.max = v;
            cs.valid = true;
          } else {
            if (v.Compare(cs.min) < 0) cs.min = v;
            if (v.Compare(cs.max) > 0) cs.max = v;
          }
          uint64_t bits = 0;
          std::memcpy(&bits, p, col.type.ByteSize());
          counters[c].AddScalar(bits);
          if (col.type.id != TypeId::kDouble) {
            const int64_t iv = v.AsInt64();
            if (has_prev[c] != 0) {
              if (iv < prev[c]) {
                sorted[c] = 0;
              } else {
                max_step[c] = std::max(max_step[c], iv - prev[c]);
              }
            }
            prev[c] = iv;
            has_prev[c] = 1;
          }
          break;
        }
        case TypeId::kChar: {
          Value v = schema_.GetValue(tuple, c);
          if (!cs.valid) {
            cs.min = v;
            cs.max = v;
            cs.valid = true;
          } else {
            if (v.Compare(cs.min) < 0) cs.min = v;
            if (v.Compare(cs.max) > 0) cs.max = v;
          }
          counters[c].AddString(reinterpret_cast<const char*>(p),
                                col.type.length);
          break;
        }
      }
    }
  }));

  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    ColumnStats& cs = stats_.columns[c];
    if (counters[c].overflowed) {
      cs.distinct = num_tuples_;
      cs.distinct_exact = false;
    } else {
      cs.distinct = counters[c].Count();
      cs.distinct_exact = true;
    }
    const TypeId id = schema_.ColumnAt(c).type.id;
    const bool int_family =
        id == TypeId::kInt32 || id == TypeId::kInt64 || id == TypeId::kDate;
    cs.sorted_asc = int_family && has_prev[c] != 0 && sorted[c] != 0;
    cs.max_step = cs.sorted_asc ? max_step[c] : 0;
  }
  stats_.valid = true;
  return Status::OK();
}

}  // namespace hique

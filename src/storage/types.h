#ifndef HIQUE_STORAGE_TYPES_H_
#define HIQUE_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

namespace hique {

/// Column types supported by the engine. The set follows the paper's
/// prototype: fixed-length scalar types plus fixed-length CHAR(N) strings
/// (NSM tuples are fixed length, so VARCHAR is modelled as padded CHAR).
/// DATE is stored as int32 days since 1970-01-01, DECIMAL as DOUBLE — both
/// choices the 2010-era prototype also makes implicitly.
enum class TypeId : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kDate = 3,   // int32 days since epoch
  kChar = 4,   // fixed length, space padded, not NUL terminated
};

/// A concrete column type: a TypeId plus the byte length for CHAR(N).
struct Type {
  TypeId id = TypeId::kInt32;
  uint16_t length = 0;  // only meaningful for kChar

  static Type Int32() { return {TypeId::kInt32, 0}; }
  static Type Int64() { return {TypeId::kInt64, 0}; }
  static Type Double() { return {TypeId::kDouble, 0}; }
  static Type Date() { return {TypeId::kDate, 0}; }
  static Type Char(uint16_t n) { return {TypeId::kChar, n}; }

  /// Storage footprint of a value of this type inside a tuple.
  uint32_t ByteSize() const {
    switch (id) {
      case TypeId::kInt32:
      case TypeId::kDate:
        return 4;
      case TypeId::kInt64:
      case TypeId::kDouble:
        return 8;
      case TypeId::kChar:
        return length;
    }
    return 0;
  }

  /// Natural alignment for direct pointer-cast access (paper §V-B relies on
  /// casting field pointers to primitive types).
  uint32_t Alignment() const {
    switch (id) {
      case TypeId::kInt32:
      case TypeId::kDate:
        return 4;
      case TypeId::kInt64:
      case TypeId::kDouble:
        return 8;
      case TypeId::kChar:
        return 1;
    }
    return 1;
  }

  bool IsNumeric() const {
    return id == TypeId::kInt32 || id == TypeId::kInt64 ||
           id == TypeId::kDouble;
  }
  bool IsFixedScalar() const { return id != TypeId::kChar; }

  bool operator==(const Type& other) const {
    return id == other.id && (id != TypeId::kChar || length == other.length);
  }

  /// SQL-ish rendering, e.g. "INT", "CHAR(10)".
  std::string ToString() const;

  /// C type the code generator casts field pointers to, e.g. "int32_t".
  /// CHAR columns are accessed as `const char*`.
  const char* CType() const;
};

/// Days since 1970-01-01 for a calendar date (proleptic Gregorian).
int32_t DateToDays(int year, int month, int day);

/// Inverse of DateToDays.
void DaysToDate(int32_t days, int* year, int* month, int* day);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int32_t days);

}  // namespace hique

#endif  // HIQUE_STORAGE_TYPES_H_

#ifndef HIQUE_STORAGE_SCHEMA_H_
#define HIQUE_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"
#include "storage/value.h"

namespace hique {

/// A named, typed column.
struct Column {
  std::string name;
  Type type;
};

/// Tuple layout for NSM storage. Field offsets respect natural alignment so
/// generated code can cast field pointers directly to primitive types
/// (paper §V-B: "pointer casts and primitive data comparisons"), and the
/// tuple size is rounded up to 8 bytes so tuples stay aligned when laid out
/// back-to-back inside a page.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) {
    for (auto& c : columns) AddColumn(c.name, c.type);
  }

  void AddColumn(const std::string& name, Type type);

  size_t NumColumns() const { return columns_.size(); }
  const Column& ColumnAt(size_t i) const { return columns_[i]; }
  uint32_t OffsetAt(size_t i) const { return offsets_[i]; }

  /// Total tuple footprint including alignment padding.
  uint32_t TupleSize() const { return tuple_size_; }

  /// Index of the named column, or -1.
  int FindColumn(const std::string& name) const;

  /// Reads column `i` of the tuple at `tuple` into a boxed Value.
  Value GetValue(const uint8_t* tuple, size_t i) const;

  /// Writes a boxed Value into column `i` (value type must match).
  void SetValue(uint8_t* tuple, size_t i, const Value& v) const;

  bool operator==(const Schema& other) const;

  /// "name TYPE, name TYPE, ..." rendering for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t end_ = 0;  // unpadded end of the last field
  uint32_t tuple_size_ = 0;
  uint32_t max_align_ = 1;
};

}  // namespace hique

#endif  // HIQUE_STORAGE_SCHEMA_H_

#include "storage/types.h"

#include <cstdio>

namespace hique {

std::string Type::ToString() const {
  switch (id) {
    case TypeId::kInt32:
      return "INT";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kChar:
      return "CHAR(" + std::to_string(length) + ")";
  }
  return "?";
}

const char* Type::CType() const {
  switch (id) {
    case TypeId::kInt32:
    case TypeId::kDate:
      return "int32_t";
    case TypeId::kInt64:
      return "int64_t";
    case TypeId::kDouble:
      return "double";
    case TypeId::kChar:
      return "char";
  }
  return "void";
}

namespace {
// Civil-date <-> day-count conversion, Howard Hinnant's algorithm.
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t year = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;
  const unsigned month = mp + (mp < 10 ? 3 : -9);
  *y = year + (month <= 2);
  *m = month;
  *d = day;
}
}  // namespace

int32_t DateToDays(int year, int month, int day) {
  return static_cast<int32_t>(
      DaysFromCivil(year, static_cast<unsigned>(month),
                    static_cast<unsigned>(day)));
}

void DaysToDate(int32_t days, int* year, int* month, int* day) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  *year = static_cast<int>(y);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

std::string FormatDate(int32_t days) {
  int y, m, d;
  DaysToDate(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace hique

#include "storage/value.h"

#include <cstdio>

namespace hique {

int Value::Compare(const Value& other) const {
  HQ_DCHECK(type_.id == other.type_.id);
  switch (type_.id) {
    case TypeId::kInt32:
    case TypeId::kDate:
    case TypeId::kInt64: {
      if (i_ < other.i_) return -1;
      if (i_ > other.i_) return 1;
      return 0;
    }
    case TypeId::kDouble: {
      if (d_ < other.d_) return -1;
      if (d_ > other.d_) return 1;
      return 0;
    }
    case TypeId::kChar: {
      int c = s_.compare(other.s_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_.id) {
    case TypeId::kInt32:
    case TypeId::kInt64:
      return std::to_string(i_);
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", d_);
      return buf;
    }
    case TypeId::kDate:
      return FormatDate(static_cast<int32_t>(i_));
    case TypeId::kChar: {
      size_t end = s_.find_last_not_of(' ');
      return end == std::string::npos ? "" : s_.substr(0, end + 1);
    }
  }
  return "?";
}

}  // namespace hique
